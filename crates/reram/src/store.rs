//! Sparse backing store for memory-line contents.
//!
//! LADDER's behaviour depends on the actual bits resident in memory (LRS
//! counters, Flip-N-Write decisions, compression). Simulated working sets
//! are far smaller than the module capacity, so contents are kept sparsely:
//! untouched lines read as all-zero (all-HRS), which is also the state of a
//! freshly formed ReRAM array.

use crate::address::LineAddr;
use crate::geometry::LINE_BYTES;
use std::collections::HashMap;

/// Contents of one 64 B memory line.
pub type LineData = [u8; LINE_BYTES];

/// Sparse map from line address to current contents.
///
/// # Examples
///
/// ```
/// use ladder_reram::{LineAddr, LineStore};
///
/// let mut store = LineStore::new();
/// let a = LineAddr::new(42);
/// assert_eq!(store.read(a), [0u8; 64]);
/// let old = store.write(a, [0xFF; 64]);
/// assert_eq!(old, [0u8; 64]);
/// assert_eq!(store.read(a)[0], 0xFF);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LineStore {
    lines: HashMap<u64, LineData>,
}

impl LineStore {
    /// Creates an empty (all-zero) store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a line; untouched lines are all-zero.
    pub fn read(&self, addr: LineAddr) -> LineData {
        self.lines
            .get(&addr.raw())
            .copied()
            .unwrap_or([0; LINE_BYTES])
    }

    /// Writes a line, returning the previous contents (the "stale memory
    /// block" LADDER-Basic reads back).
    ///
    /// Writing all-zero data to an untouched line is a no-op on the sparse
    /// map: the line already reads as all-zero (all-HRS), so inserting the
    /// default value would only grow the map. Once a line is resident it
    /// stays resident, even when rewritten to all-zero.
    pub fn write(&mut self, addr: LineAddr, data: LineData) -> LineData {
        if data == [0; LINE_BYTES] && !self.lines.contains_key(&addr.raw()) {
            return [0; LINE_BYTES];
        }
        self.lines
            .insert(addr.raw(), data)
            .unwrap_or([0; LINE_BYTES])
    }

    /// Whether the line has ever been written.
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.lines.contains_key(&addr.raw())
    }

    /// Number of lines ever written.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }
}

/// Number of `1` bits in a line.
pub fn line_ones(data: &LineData) -> u32 {
    data.iter().map(|b| b.count_ones()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reads_zero() {
        let store = LineStore::new();
        assert_eq!(store.read(LineAddr::new(7)), [0u8; LINE_BYTES]);
        assert!(!store.contains(LineAddr::new(7)));
    }

    #[test]
    fn write_returns_previous() {
        let mut store = LineStore::new();
        let a = LineAddr::new(1);
        let first = store.write(a, [1; LINE_BYTES]);
        assert_eq!(first, [0; LINE_BYTES]);
        let second = store.write(a, [2; LINE_BYTES]);
        assert_eq!(second, [1; LINE_BYTES]);
        assert_eq!(store.resident_lines(), 1);
    }

    #[test]
    fn all_zero_write_to_untouched_line_does_not_grow_the_map() {
        let mut store = LineStore::new();
        let a = LineAddr::new(5);
        // Functionally identical to before: previous contents are zero...
        assert_eq!(store.write(a, [0; LINE_BYTES]), [0; LINE_BYTES]);
        // ...reads still return zero...
        assert_eq!(store.read(a), [0; LINE_BYTES]);
        // ...but no entry equal to the default was materialized.
        assert_eq!(store.resident_lines(), 0);

        // A resident line rewritten to all-zero stays resident and keeps
        // returning its stale contents correctly.
        store.write(a, [9; LINE_BYTES]);
        assert_eq!(store.write(a, [0; LINE_BYTES]), [9; LINE_BYTES]);
        assert!(store.contains(a));
        assert_eq!(store.read(a), [0; LINE_BYTES]);
        assert_eq!(store.resident_lines(), 1);
    }

    #[test]
    fn ones_counting() {
        let mut data = [0u8; LINE_BYTES];
        data[0] = 0b1010_1010;
        data[63] = 0xFF;
        assert_eq!(line_ones(&data), 12);
    }
}
