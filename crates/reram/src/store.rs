//! Sparse backing store for memory-line contents.
//!
//! LADDER's behaviour depends on the actual bits resident in memory (LRS
//! counters, Flip-N-Write decisions, compression). Simulated working sets
//! are far smaller than the module capacity, so contents are kept sparsely:
//! untouched lines read as all-zero (all-HRS), which is also the state of a
//! freshly formed ReRAM array.

use crate::address::LineAddr;
use crate::bits;
use crate::geometry::LINE_BYTES;
use std::collections::HashMap;

/// Contents of one 64 B memory line.
pub type LineData = [u8; LINE_BYTES];

/// Permanent stuck-at faults on one line.
///
/// `sa1` bits read as `1` regardless of what was programmed (cells stuck
/// in LRS); `sa0` bits read as `0` (stuck in HRS). A bit never appears in
/// both masks — [`LineStore::inject_stuck`] gives `sa0` precedence.
#[derive(Debug, Clone, Copy)]
pub struct FaultMask {
    /// Bits stuck at 1 (LRS).
    pub sa1: LineData,
    /// Bits stuck at 0 (HRS).
    pub sa0: LineData,
}

impl FaultMask {
    /// Applies the mask to programmed data: what a read actually returns.
    pub fn apply(&self, data: &LineData) -> LineData {
        let mut out = *data;
        for base in (0..LINE_BYTES).step_by(8) {
            let d = bits::le_word(data, base);
            let sa1 = bits::le_word(&self.sa1, base);
            let sa0 = bits::le_word(&self.sa0, base);
            bits::write_le_word(&mut out, base, (d | sa1) & !sa0);
        }
        out
    }

    /// Number of stuck cells in the mask.
    pub fn stuck_bits(&self) -> u32 {
        line_ones(&self.sa1) + line_ones(&self.sa0)
    }
}

/// Sparse map from line address to current contents.
///
/// # Examples
///
/// ```
/// use ladder_reram::{LineAddr, LineStore};
///
/// let mut store = LineStore::new();
/// let a = LineAddr::new(42);
/// assert_eq!(store.read(a), [0u8; 64]);
/// let old = store.write(a, [0xFF; 64]);
/// assert_eq!(old, [0u8; 64]);
/// assert_eq!(store.read(a)[0], 0xFF);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LineStore {
    lines: HashMap<u64, LineData>,
    faults: HashMap<u64, FaultMask>,
}

impl LineStore {
    /// Creates an empty (all-zero) store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a line; untouched lines are all-zero. Stuck-at faults
    /// injected with [`LineStore::inject_stuck`] override the programmed
    /// value bit-for-bit, exactly as a real read of a faulted cell would.
    pub fn read(&self, addr: LineAddr) -> LineData {
        let data = self.read_raw(addr);
        if self.faults.is_empty() {
            return data;
        }
        match self.faults.get(&addr.raw()) {
            Some(mask) => mask.apply(&data),
            None => data,
        }
    }

    /// Reads the programmed (pre-fault-mask) contents of a line — what the
    /// write circuitry *intended* to store, for verify-read comparisons.
    pub fn read_raw(&self, addr: LineAddr) -> LineData {
        self.lines
            .get(&addr.raw())
            .copied()
            .unwrap_or([0; LINE_BYTES])
    }

    /// Writes a line, returning the previous contents (the "stale memory
    /// block" LADDER-Basic reads back).
    ///
    /// Writing all-zero data to an untouched line is a no-op on the sparse
    /// map: the line already reads as all-zero (all-HRS), so inserting the
    /// default value would only grow the map. Once a line is resident it
    /// stays resident, even when rewritten to all-zero.
    pub fn write(&mut self, addr: LineAddr, data: LineData) -> LineData {
        if data == [0; LINE_BYTES] && !self.lines.contains_key(&addr.raw()) {
            return [0; LINE_BYTES];
        }
        self.lines
            .insert(addr.raw(), data)
            .unwrap_or([0; LINE_BYTES])
    }

    /// Whether the line has ever been written.
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.lines.contains_key(&addr.raw())
    }

    /// Number of lines ever written.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }

    /// Accumulates permanent stuck-at faults on a line. Set bits in `sa1`
    /// become stuck at 1 (LRS), set bits in `sa0` stuck at 0 (HRS); on
    /// conflict (a bit in both the new and the accumulated masks) `sa0`
    /// wins, modeling the heavily-cycled cell collapsing into HRS.
    pub fn inject_stuck(&mut self, addr: LineAddr, sa1: LineData, sa0: LineData) {
        let mask = self.faults.entry(addr.raw()).or_insert(FaultMask {
            sa1: [0; LINE_BYTES],
            sa0: [0; LINE_BYTES],
        });
        for i in 0..LINE_BYTES {
            mask.sa0[i] |= sa0[i];
            mask.sa1[i] = (mask.sa1[i] | sa1[i]) & !mask.sa0[i];
        }
    }

    /// The fault mask of a line, if it has any stuck cells.
    pub fn fault_mask(&self, addr: LineAddr) -> Option<&FaultMask> {
        self.faults.get(&addr.raw())
    }

    /// Number of stuck cells on a line.
    pub fn stuck_bits(&self, addr: LineAddr) -> u32 {
        self.fault_mask(addr).map_or(0, FaultMask::stuck_bits)
    }

    /// Number of lines carrying at least one stuck cell.
    pub fn faulted_lines(&self) -> usize {
        self.faults.len()
    }
}

/// Number of `1` bits in a line.
pub fn line_ones(data: &LineData) -> u32 {
    bits::ones(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reads_zero() {
        let store = LineStore::new();
        assert_eq!(store.read(LineAddr::new(7)), [0u8; LINE_BYTES]);
        assert!(!store.contains(LineAddr::new(7)));
    }

    #[test]
    fn write_returns_previous() {
        let mut store = LineStore::new();
        let a = LineAddr::new(1);
        let first = store.write(a, [1; LINE_BYTES]);
        assert_eq!(first, [0; LINE_BYTES]);
        let second = store.write(a, [2; LINE_BYTES]);
        assert_eq!(second, [1; LINE_BYTES]);
        assert_eq!(store.resident_lines(), 1);
    }

    #[test]
    fn all_zero_write_to_untouched_line_does_not_grow_the_map() {
        let mut store = LineStore::new();
        let a = LineAddr::new(5);
        // Functionally identical to before: previous contents are zero...
        assert_eq!(store.write(a, [0; LINE_BYTES]), [0; LINE_BYTES]);
        // ...reads still return zero...
        assert_eq!(store.read(a), [0; LINE_BYTES]);
        // ...but no entry equal to the default was materialized.
        assert_eq!(store.resident_lines(), 0);

        // A resident line rewritten to all-zero stays resident and keeps
        // returning its stale contents correctly.
        store.write(a, [9; LINE_BYTES]);
        assert_eq!(store.write(a, [0; LINE_BYTES]), [9; LINE_BYTES]);
        assert!(store.contains(a));
        assert_eq!(store.read(a), [0; LINE_BYTES]);
        assert_eq!(store.resident_lines(), 1);
    }

    #[test]
    fn stuck_bits_override_programmed_data() {
        let mut store = LineStore::new();
        let a = LineAddr::new(3);
        store.write(a, [0x0F; LINE_BYTES]);
        let mut sa1 = [0u8; LINE_BYTES];
        let mut sa0 = [0u8; LINE_BYTES];
        sa1[0] = 0b1000_0000; // stuck-at-1 in a programmed-0 position
        sa0[0] = 0b0000_0001; // stuck-at-0 in a programmed-1 position
        store.inject_stuck(a, sa1, sa0);
        assert_eq!(store.read(a)[0], 0b1000_1110);
        // The programmed image is unchanged: retry pulses re-verify
        // against what the controller intended to store.
        assert_eq!(store.read_raw(a)[0], 0x0F);
        assert_eq!(store.stuck_bits(a), 2);
        assert_eq!(store.faulted_lines(), 1);
        // Unfaulted lines are untouched.
        assert_eq!(store.stuck_bits(LineAddr::new(4)), 0);
    }

    #[test]
    fn sa0_wins_mask_conflicts() {
        let mut store = LineStore::new();
        let a = LineAddr::new(9);
        let mut sa1 = [0u8; LINE_BYTES];
        sa1[5] = 0b0110_0000;
        store.inject_stuck(a, sa1, [0; LINE_BYTES]);
        let mut sa0 = [0u8; LINE_BYTES];
        sa0[5] = 0b0100_0000; // collapses one of the stuck-at-1 cells
        store.inject_stuck(a, [0; LINE_BYTES], sa0);
        let mask = store.fault_mask(a).expect("mask present");
        assert_eq!(mask.sa1[5], 0b0010_0000);
        assert_eq!(mask.sa0[5], 0b0100_0000);
        assert_eq!(mask.stuck_bits(), 2);
    }

    #[test]
    fn masked_read_of_untouched_line() {
        let mut store = LineStore::new();
        let a = LineAddr::new(11);
        let mut sa1 = [0u8; LINE_BYTES];
        sa1[7] = 0xFF;
        store.inject_stuck(a, sa1, [0; LINE_BYTES]);
        // Never written: reads as all-zero except the stuck-at-1 byte.
        let r = store.read(a);
        assert_eq!(r[7], 0xFF);
        assert_eq!(line_ones(&r), 8);
        assert!(!store.contains(a));
    }

    #[test]
    fn ones_counting() {
        let mut data = [0u8; LINE_BYTES];
        data[0] = 0b1010_1010;
        data[63] = 0xFF;
        assert_eq!(line_ones(&data), 12);
    }
}
