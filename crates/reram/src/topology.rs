//! Module topology for sharded multi-channel scale-out runs.
//!
//! A [`Topology`] describes how a large module is split into independent
//! channel shards: `channels × ranks` means `channels` shards, each owning
//! one channel of `ranks` ranks with its own memory controller and event
//! stream. The per-shard [`Geometry`] keeps every other dimension of the
//! base module, so one shard is exactly a one-channel slice of it.

use crate::geometry::Geometry;
use std::fmt;
use std::str::FromStr;

/// A sharded module topology: `channels × ranks`.
///
/// # Examples
///
/// ```
/// use ladder_reram::{Geometry, Topology};
///
/// let t: Topology = "4x2".parse().unwrap();
/// assert_eq!(t.channels, 4);
/// assert_eq!(t.shards(), 4);
/// let g = t.shard_geometry(&Geometry::default());
/// assert_eq!(g.channels, 1);
/// assert_eq!(g.ranks_per_channel, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    /// Independent memory channels. Each channel becomes one shard with
    /// its own controller and event stream.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
}

impl Topology {
    /// Builds a topology.
    ///
    /// # Errors
    ///
    /// Returns a description when either dimension is zero.
    pub fn new(channels: usize, ranks: usize) -> Result<Self, String> {
        if channels == 0 || ranks == 0 {
            return Err(format!(
                "topology dimensions must be nonzero, got {channels}x{ranks}"
            ));
        }
        Ok(Topology { channels, ranks })
    }

    /// Parses the CLI form `CxR` (e.g. `4x2`).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed input.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (c, r) = s
            .split_once(['x', 'X'])
            .ok_or_else(|| format!("expected CxR (e.g. 4x2), got {s:?}"))?;
        let channels: usize = c
            .trim()
            .parse()
            .map_err(|_| format!("bad channel count in topology {s:?}"))?;
        let ranks: usize = r
            .trim()
            .parse()
            .map_err(|_| format!("bad rank count in topology {s:?}"))?;
        Self::new(channels, ranks)
    }

    /// Number of shards a sharded run spawns (one per channel).
    pub fn shards(&self) -> usize {
        self.channels
    }

    /// The geometry of one shard: a one-channel slice of `base` with this
    /// topology's rank count. Everything below the rank level (banks,
    /// mats, rows, columns) is inherited from `base`.
    pub fn shard_geometry(&self, base: &Geometry) -> Geometry {
        Geometry {
            channels: 1,
            ranks_per_channel: self.ranks,
            ..base.clone()
        }
    }

    /// Total pages across all shards of this topology over `base`.
    pub fn total_pages(&self, base: &Geometry) -> u64 {
        self.shard_geometry(base).pages() as u64 * self.channels as u64
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.channels, self.ranks)
    }
}

impl FromStr for Topology {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_cxr_and_rejects_garbage() {
        assert_eq!(
            Topology::parse("4x2").unwrap(),
            Topology::new(4, 2).unwrap()
        );
        assert_eq!(Topology::parse("1X8").unwrap().ranks, 8);
        assert!(Topology::parse("4").is_err());
        assert!(Topology::parse("x2").is_err());
        assert!(Topology::parse("4x").is_err());
        assert!(Topology::parse("0x2").is_err());
        assert!(Topology::parse("4xtwo").is_err());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let t = Topology::new(8, 1).unwrap();
        assert_eq!(t.to_string().parse::<Topology>().unwrap(), t);
    }

    #[test]
    fn shard_geometry_is_a_one_channel_slice() {
        let base = Geometry::default();
        let t = Topology::new(4, 2).unwrap();
        let g = t.shard_geometry(&base);
        assert!(g.validate().is_ok());
        assert_eq!(g.channels, 1);
        assert_eq!(g.ranks_per_channel, 2);
        assert_eq!(g.banks_per_rank, base.banks_per_rank);
        assert_eq!(g.mat_rows, base.mat_rows);
        // Four 1x2 shards hold exactly as much as the 2x2x2-bank default
        // module scaled to four channels.
        assert_eq!(t.total_pages(&base), 2 * base.pages() as u64);
    }
}
