//! Per-tier coding-layer counters, folded across shards like every other
//! aggregate.

use ladder_trace::Mergeable;

/// Counter buckets: bucket 0 collects untiered (flat / local) resolves,
/// buckets 1..=3 collect tiers 0..=2 of a tiered scheme.
pub const CODING_BUCKETS: usize = 4;

/// What the coding layer corrected and lost, per protection tier.
///
/// Maintained by the fault model at resolve time and folded across shards
/// through [`Mergeable`]. `wa_millionths` is a property of the installed
/// scheme (not an event count), so it folds by `max` — every shard of a
/// run installs the same scheme, making the fold exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodingStats {
    /// Resolve calls routed to each bucket.
    pub resolves: [u64; CODING_BUCKETS],
    /// Residual bits corrected, per bucket.
    pub corrected_bits: [u64; CODING_BUCKETS],
    /// Uncorrectable lines, per bucket.
    pub uncorrectable: [u64; CODING_BUCKETS],
    /// Pages moved by the remap backend on coding-layer faults.
    pub remaps: u64,
    /// The scheme's parity write amplification, in millionths (an `f64`
    /// would break `Eq` and bit-exact folding).
    pub wa_millionths: u64,
}

impl CodingStats {
    /// Bucket index of a resolve at `tier` (see [`CODING_BUCKETS`]).
    pub fn bucket(tier: Option<u32>) -> usize {
        match tier {
            None => 0,
            Some(t) => ((t as usize) + 1).min(CODING_BUCKETS - 1),
        }
    }

    /// Folds one resolve outcome into the counters.
    pub fn note_resolve(&mut self, tier: Option<u32>, residual_bits: u32, corrected: bool) {
        let b = Self::bucket(tier);
        self.resolves[b] += 1;
        if corrected {
            self.corrected_bits[b] += u64::from(residual_bits);
        } else {
            self.uncorrectable[b] += 1;
        }
    }

    /// The scheme's parity write amplification as a fraction.
    pub fn write_amplification(&self) -> f64 {
        self.wa_millionths as f64 / 1e6
    }

    /// Total uncorrectable lines across buckets.
    pub fn total_uncorrectable(&self) -> u64 {
        self.uncorrectable.iter().sum()
    }

    /// Total corrected bits across buckets.
    pub fn total_corrected_bits(&self) -> u64 {
        self.corrected_bits.iter().sum()
    }

    /// One-line human-readable report.
    pub fn summary(&self) -> String {
        format!(
            "coding: {} corrected bits, {} uncorrectable lines, {} remaps, WA {:.3}",
            self.total_corrected_bits(),
            self.total_uncorrectable(),
            self.remaps,
            self.write_amplification()
        )
    }
}

impl Mergeable for CodingStats {
    fn merge_from(&mut self, other: &Self) {
        for i in 0..CODING_BUCKETS {
            self.resolves[i] = self.resolves[i].saturating_add(other.resolves[i]);
            self.corrected_bits[i] = self.corrected_bits[i].saturating_add(other.corrected_bits[i]);
            self.uncorrectable[i] = self.uncorrectable[i].saturating_add(other.uncorrectable[i]);
        }
        self.remaps = self.remaps.saturating_add(other.remaps);
        // Scheme property, identical across shards: max keeps the fold
        // associative/commutative with the all-zero identity.
        self.wa_millionths = self.wa_millionths.max(other.wa_millionths);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladder_trace::fold;

    #[test]
    fn buckets_route_tiers_and_untier() {
        assert_eq!(CodingStats::bucket(None), 0);
        assert_eq!(CodingStats::bucket(Some(0)), 1);
        assert_eq!(CodingStats::bucket(Some(2)), 3);
        assert_eq!(CodingStats::bucket(Some(99)), 3, "clamped");
    }

    #[test]
    fn note_resolve_splits_corrected_and_lost() {
        let mut s = CodingStats::default();
        s.note_resolve(Some(1), 5, true);
        s.note_resolve(Some(1), 40, false);
        s.note_resolve(None, 2, true);
        assert_eq!(s.resolves, [1, 0, 2, 0]);
        assert_eq!(s.corrected_bits, [2, 0, 5, 0]);
        assert_eq!(s.uncorrectable, [0, 0, 1, 0]);
        assert_eq!(s.total_corrected_bits(), 7);
        assert_eq!(s.total_uncorrectable(), 1);
        assert!(s.summary().contains("7 corrected"));
    }

    #[test]
    fn merge_adds_counters_and_maxes_wa() {
        let mut a = CodingStats {
            remaps: 1,
            wa_millionths: 125_000,
            ..CodingStats::default()
        };
        a.note_resolve(Some(0), 3, true);
        let mut b = CodingStats {
            remaps: 2,
            wa_millionths: 125_000,
            ..CodingStats::default()
        };
        b.note_resolve(Some(0), 4, true);
        let total: CodingStats = fold([a, b]);
        assert_eq!(total.corrected_bits[1], 7);
        assert_eq!(total.remaps, 3);
        assert_eq!(total.wa_millionths, 125_000);
        assert!((total.write_amplification() - 0.125).abs() < 1e-9);
        // Identity law.
        let mut c = total;
        c.merge_from(&CodingStats::default());
        assert_eq!(c, total);
    }
}
