//! Location-dependent error channel and coding-layer schemes for the
//! LADDER reproduction.
//!
//! The reliability literature the repo cites (Chen & Dolecek's 1S1R
//! channel models; the locally-rewritable-code line of work) makes the
//! raw bit-error rate of a crossbar write a function of the write's
//! ⟨WL, BL⟩ position and its line content — exactly the two axes LADDER's
//! timing table already parameterizes. This crate turns that table into
//! an explicit *channel* and layers code schemes on top of it:
//!
//! * [`LocationChannel`] — derives per-line raw BER and stuck-at arrival
//!   probability from crossbar position and IR-drop margin, calibrated
//!   against the `ladder-xbar` MNA timing table. It is the single error
//!   source the fault stack samples from (replacing flat per-run knobs).
//! * [`CodeScheme`] — what the ECC layer can correct per line, and what
//!   that protection costs in parity write amplification. Three
//!   implementations: [`FlatEcc`] (today's uniform SEC-DED budget,
//!   byte-compatible with the pre-coding fault stack), [`TieredBch`]
//!   (position-tiered BCH-style budgets — far, high-margin regions get
//!   deeper correction), and [`LocalRewrite`] (a locally-rewritable-code
//!   model: per-group repair at low parity cost).
//! * [`CodingStats`] — per-tier correction counters folded across shards
//!   through [`ladder_trace::Mergeable`] like every other aggregate.
//!
//! Everything here is pure arithmetic over the channel: no RNG, no
//! clocks, no ambient state — the same determinism contract as the rest
//! of the workspace.

mod channel;
mod scheme;
mod stats;

pub use channel::LocationChannel;
pub use scheme::{CodeScheme, CodingKind, FlatEcc, LocalRewrite, TieredBch};
pub use stats::{CodingStats, CODING_BUCKETS};
