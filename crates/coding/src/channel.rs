//! The location-dependent error channel: crossbar position + IR-drop
//! margin → per-line raw bit-error rate.

use ladder_reram::{line_ones, AddressMap, LineAddr, LineData, LINE_BYTES};
use ladder_xbar::TimingTable;

/// Bits in one line.
pub(crate) const LINE_BITS: u32 = (LINE_BYTES * 8) as u32;

/// The per-line error channel of a crossbar module.
///
/// The channel's failure-probability proxy is the LADDER timing table's
/// IR-drop *margin*: the normalized pulse latency the table demands for a
/// ⟨location, content⟩ corner, in `(0, 1]`. Far wordlines and LRS-heavy
/// lines need the longest pulses and therefore sit closest to the write
/// margin cliff — the channel charges them proportionally more raw errors,
/// matching the 1S1R channel models' position/resistance dependence.
///
/// The margin arithmetic is byte-identical to what the fault model used
/// before this crate existed, so a flat-ECC run over this channel
/// reproduces the legacy golden digests bit-for-bit.
///
/// # Examples
///
/// ```
/// use ladder_coding::LocationChannel;
/// use ladder_reram::{AddressMap, Geometry, LineAddr};
/// use ladder_xbar::{TableConfig, TimingTable};
///
/// let table = TimingTable::generate(&TableConfig::ladder_default()).unwrap();
/// let ch = LocationChannel::new(table, AddressMap::new(Geometry::default()));
/// let line = LineAddr::new(40_000 * 64);
/// // LRS-heavy content sits closer to the margin cliff.
/// assert!(ch.margin(line, &[0xFF; 64]) > ch.margin(line, &[0x00; 64]));
/// ```
#[derive(Debug, Clone)]
pub struct LocationChannel {
    table: TimingTable,
    map: AddressMap,
    worst_ps: u64,
}

impl LocationChannel {
    /// Builds the channel over the physical timing table and address map.
    /// The table should be the full location+content LADDER table
    /// regardless of the controller policy under test: it describes the
    /// *device*, so every scheme faces identical raw error pressure.
    pub fn new(table: TimingTable, map: AddressMap) -> Self {
        let worst_ps = table.worst_ps().max(1);
        Self {
            table,
            map,
            worst_ps,
        }
    }

    /// Bits per line this channel models.
    pub fn line_bits(&self) -> u32 {
        LINE_BITS
    }

    /// IR-drop failure margin of a write at `addr` carrying `data`: the
    /// normalized latency the timing table demands for this
    /// ⟨location, content⟩ corner, in `(0, 1]`. Far cells / LRS-heavy
    /// lines → 1.
    pub fn margin(&self, addr: LineAddr, data: &LineData) -> f64 {
        let (wl, col) = self.map.write_location(addr);
        let need = self.table.lookup_ps(wl, col, line_ones(data) as usize);
        need as f64 / self.worst_ps as f64
    }

    /// Location-only margin of `addr` under worst-case (all-LRS) content —
    /// the position axis alone, used to place a line into a protection
    /// tier before its content is known.
    pub fn position_margin(&self, addr: LineAddr) -> f64 {
        let (wl, col) = self.map.write_location(addr);
        let need = self.table.lookup_ps(wl, col, LINE_BITS as usize);
        need as f64 / self.worst_ps as f64
    }

    /// The smallest position margin any line of the module can have: the
    /// near corner under worst-case content. Tier thresholds span
    /// `[floor, 1]`.
    pub fn position_margin_floor(&self) -> f64 {
        // Line 0 decodes to wordline 0, block slot 0 — the nearest
        // ⟨WL, worst column⟩ corner `write_location` can produce.
        let (wl, col) = self.map.write_location(LineAddr::new(0));
        let need = self.table.lookup_ps(wl, col, LINE_BITS as usize);
        (need as f64 / self.worst_ps as f64).min(1.0)
    }

    /// Raw per-bit error probability of program pulse `attempt` at this
    /// corner: `base_ber × margin / 4^attempt` (escalated retry pulses
    /// quarter the probability each).
    pub fn raw_ber(&self, base_ber: f64, addr: LineAddr, data: &LineData, attempt: u32) -> f64 {
        base_ber * self.margin(addr, data) / 4f64.powi(attempt as i32)
    }

    /// Expected raw bit errors of one initial pulse at position margin
    /// `margin` — the Poisson rate λ a code budget is sized against.
    pub fn expected_errors(&self, base_ber: f64, margin: f64) -> f64 {
        base_ber * margin * f64::from(LINE_BITS)
    }

    /// Per-write stuck-at minting probability after `write_idx` writes of
    /// an `endurance`-rated cell: arrival scales linearly with consumed
    /// endurance (WoLFRaM's wear-driven permanent-fault channel).
    pub fn stuck_probability(&self, stuck_rate: f64, write_idx: u64, endurance: u64) -> f64 {
        let consumed = (write_idx as f64 / endurance as f64).min(1.0);
        stuck_rate * consumed
    }

    /// The address map the channel decodes positions with.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladder_reram::{Decoded, Geometry};
    use ladder_xbar::TableConfig;

    fn channel() -> LocationChannel {
        let table = TimingTable::generate(&TableConfig::ladder_default()).expect("table");
        LocationChannel::new(table, AddressMap::new(Geometry::default()))
    }

    fn at_wordline(ch: &LocationChannel, wordline: usize) -> LineAddr {
        ch.map().encode(&Decoded {
            channel: 0,
            rank: 0,
            bank: 0,
            mat_group: 0,
            wordline,
            block_slot: 63,
        })
    }

    #[test]
    fn far_positions_have_higher_margin() {
        let ch = channel();
        let near = ch.position_margin(at_wordline(&ch, 0));
        let far = ch.position_margin(at_wordline(&ch, ch.map().geometry().mat_rows - 1));
        assert!(far > near, "far {far} vs near {near}");
        assert!(far <= 1.0);
        assert!(near >= ch.position_margin_floor());
    }

    #[test]
    fn margin_floor_bounds_every_position() {
        let ch = channel();
        let floor = ch.position_margin_floor();
        assert!(floor > 0.0 && floor < 1.0);
        for wl in [0, 100, 300, 511] {
            assert!(ch.position_margin(at_wordline(&ch, wl)) >= floor);
        }
    }

    #[test]
    fn raw_ber_quarters_per_attempt() {
        let ch = channel();
        let a = at_wordline(&ch, 200);
        let data = [0xAB; LINE_BYTES];
        let p0 = ch.raw_ber(1e-3, a, &data, 0);
        let p2 = ch.raw_ber(1e-3, a, &data, 2);
        assert!((p0 / p2 - 16.0).abs() < 1e-9);
    }

    #[test]
    fn stuck_probability_saturates_at_endurance() {
        let ch = channel();
        assert_eq!(ch.stuck_probability(0.1, 0, 1_000), 0.0);
        assert!((ch.stuck_probability(0.1, 500, 1_000) - 0.05).abs() < 1e-12);
        assert_eq!(ch.stuck_probability(0.1, 5_000, 1_000), 0.1);
    }

    #[test]
    fn expected_errors_scale_with_margin() {
        let ch = channel();
        assert!((ch.expected_errors(1e-3, 1.0) - 0.512).abs() < 1e-9);
        assert!(ch.expected_errors(1e-3, 0.5) < ch.expected_errors(1e-3, 1.0));
    }
}
