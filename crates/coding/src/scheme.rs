//! Code schemes over the location channel: what the ECC layer corrects
//! per line, and what the parity costs in write amplification.

use crate::channel::{LocationChannel, LINE_BITS};
use std::fmt;
use std::str::FromStr;

/// BCH parity bits per corrected bit over a 512-bit payload
/// (`n ≤ 2^m − 1` with `m = 10`).
const BCH_PARITY_PER_T: u32 = 10;

/// Parity bits of one single-error-correcting local group (Hamming-style
/// over a 64-bit group).
const LOCAL_PARITY_PER_T: u32 = 7;

/// Local groups per line in the locally-rewritable model.
const LOCAL_GROUPS: u32 = 8;

/// Smallest raw BER a channel-derived budget is designed against, so an
/// inert (rate-0) run still gets a well-formed (minimal) code.
const MIN_DESIGN_BER: f64 = 1e-5;

/// Residual-uncorrectable target the channel-derived budgets are sized
/// for: the Poisson tail beyond the budget must fall below this.
const TARGET_UBER: f64 = 1e-9;

/// Smallest `t` such that `P(X > t) ≤ target` for `X ~ Poisson(lambda)` —
/// the correction depth a tier needs at raw error rate λ.
fn budget_for(lambda: f64, target: f64) -> u32 {
    let mut pmf = (-lambda).exp();
    let mut cdf = pmf;
    let mut t = 0u32;
    while 1.0 - cdf > target && t < LINE_BITS {
        t += 1;
        pmf *= lambda / f64::from(t);
        cdf += pmf;
    }
    t.max(1)
}

/// A per-line correction code over the location channel.
///
/// A scheme answers three questions the fault stack asks: how many
/// residual failed bits this line's code can absorb
/// ([`correctable_bits`](CodeScheme::correctable_bits)), which protection
/// tier the line sits in (for tiered schemes), and what the parity
/// overhead costs in write amplification. Schemes may also shape the
/// program-and-verify escalation schedule — a tiered code protecting a
/// margin-poor region can afford gentler pulses there and escalate harder
/// where its budget is thin.
pub trait CodeScheme: fmt::Debug + Send {
    /// Scheme name for reports and CSV cells.
    fn name(&self) -> &'static str;

    /// Residual failed bits the line's code corrects.
    fn correctable_bits(&self, addr: ladder_reram::LineAddr) -> u32;

    /// Protection tier of the line, for tiered schemes (`None` when the
    /// scheme is uniform — the flat default emits no tier records, which
    /// keeps legacy golden digests byte-identical).
    fn tier(&self, _addr: ladder_reram::LineAddr) -> Option<u32> {
        None
    }

    /// Parity write amplification: extra physical bits written per data
    /// bit (e.g. `0.125` = 12.5 % overhead).
    fn write_amplification(&self) -> f64;

    /// Retry-escalation percentage for a P&V retry at `addr`, given the
    /// configured base percentage. The default leaves the schedule
    /// untouched (byte-identical to the pre-coding fault stack).
    fn escalation_pct(&self, base_pct: u32, _addr: ladder_reram::LineAddr) -> u32 {
        base_pct
    }
}

/// Today's uniform SEC-DED-style budget: every line gets the same
/// correction depth, regardless of position.
///
/// This is the byte-compatible default — a run with `FlatEcc` over the
/// channel reproduces the pre-coding fault stack bit-for-bit (same
/// budget comparison, same escalation schedule, no tier records).
#[derive(Debug, Clone, Copy)]
pub struct FlatEcc {
    bits: u32,
}

impl FlatEcc {
    /// A flat budget of `bits` correctable bits per line (the fault
    /// config's `ecc_correctable_bits`).
    pub fn new(bits: u32) -> Self {
        Self { bits }
    }
}

impl CodeScheme for FlatEcc {
    fn name(&self) -> &'static str {
        "flat-ecc"
    }

    fn correctable_bits(&self, _addr: ladder_reram::LineAddr) -> u32 {
        self.bits
    }

    fn write_amplification(&self) -> f64 {
        // Eight 8 B SEC-DED words per line, 8 parity bits each.
        64.0 / f64::from(LINE_BITS)
    }
}

/// Position-tiered BCH-style budgets: the module is split into three
/// position tiers by IR-drop margin, and each tier's correction depth is
/// sized from the channel so the Poisson tail of raw errors beyond the
/// budget falls below a fixed residual-UBER target. Far, margin-poor
/// tiers carry deeper (more expensive) codes; near tiers get away with
/// shallow ones — the coding-layer mirror of LADDER's latency argument.
#[derive(Debug, Clone)]
pub struct TieredBch {
    channel: LocationChannel,
    /// Position-margin upper bounds of tiers 0 and 1 (tier 2 runs to 1).
    thresholds: [f64; 2],
    /// Correction depth per tier.
    budgets: [u32; 3],
}

impl TieredBch {
    /// Derives tier thresholds and budgets from the channel at design
    /// rate `base_ber`.
    pub fn from_channel(channel: LocationChannel, base_ber: f64) -> Self {
        let ber = base_ber.max(MIN_DESIGN_BER);
        let floor = channel.position_margin_floor();
        let span = (1.0 - floor).max(f64::EPSILON);
        let thresholds = [floor + span / 3.0, floor + 2.0 * span / 3.0];
        // Each tier is sized against its own worst-case margin.
        let reps = [thresholds[0], thresholds[1], 1.0];
        let budgets = reps.map(|m| budget_for(channel.expected_errors(ber, m), TARGET_UBER));
        Self {
            channel,
            thresholds,
            budgets,
        }
    }

    /// The per-tier correction depths (tier 0 = near, tier 2 = far).
    pub fn budgets(&self) -> [u32; 3] {
        self.budgets
    }

    fn tier_of(&self, addr: ladder_reram::LineAddr) -> u32 {
        let pm = self.channel.position_margin(addr);
        if pm <= self.thresholds[0] {
            0
        } else if pm <= self.thresholds[1] {
            1
        } else {
            2
        }
    }
}

impl CodeScheme for TieredBch {
    fn name(&self) -> &'static str {
        "tiered-bch"
    }

    fn correctable_bits(&self, addr: ladder_reram::LineAddr) -> u32 {
        self.budgets[self.tier_of(addr) as usize]
    }

    fn tier(&self, addr: ladder_reram::LineAddr) -> Option<u32> {
        Some(self.tier_of(addr))
    }

    fn write_amplification(&self) -> f64 {
        let parity: u32 = self.budgets.iter().map(|t| t * BCH_PARITY_PER_T).sum();
        f64::from(parity) / 3.0 / f64::from(LINE_BITS)
    }

    fn escalation_pct(&self, base_pct: u32, addr: ladder_reram::LineAddr) -> u32 {
        // Thin-budget (near) tiers escalate harder: the code cannot
        // absorb what an under-driven retry leaves behind. The far tier
        // keeps the configured schedule.
        base_pct + 25 * (2 - self.tier_of(addr))
    }
}

/// A locally-rewritable-code model: the line is split into eight 64-bit
/// groups, each carrying its own shallow single/multi-error-correcting
/// local code, so a residual error is repaired by rewriting one group
/// instead of the whole line. Correction depth per group is derived from
/// the channel at the worst-case margin; parity cost stays low because
/// local codes are short.
#[derive(Debug, Clone)]
pub struct LocalRewrite {
    /// Correctable bits per 64-bit local group.
    per_group: u32,
}

impl LocalRewrite {
    /// Derives the per-group depth from the channel at design rate
    /// `base_ber`.
    pub fn from_channel(channel: LocationChannel, base_ber: f64) -> Self {
        let ber = base_ber.max(MIN_DESIGN_BER);
        // One group sees 1/LOCAL_GROUPS of the line's raw errors.
        let lambda = channel.expected_errors(ber, 1.0) / f64::from(LOCAL_GROUPS);
        Self {
            per_group: budget_for(lambda, TARGET_UBER),
        }
    }

    /// Correctable bits per local group.
    pub fn per_group(&self) -> u32 {
        self.per_group
    }
}

impl CodeScheme for LocalRewrite {
    fn name(&self) -> &'static str {
        "local-rewrite"
    }

    fn correctable_bits(&self, _addr: ladder_reram::LineAddr) -> u32 {
        // Residues spread across groups; the line survives as long as no
        // group exceeds its local depth. The budget exposed to the
        // resolve path is the aggregate local capacity.
        self.per_group * LOCAL_GROUPS
    }

    fn write_amplification(&self) -> f64 {
        f64::from(LOCAL_GROUPS * LOCAL_PARITY_PER_T * self.per_group) / f64::from(LINE_BITS)
    }
}

/// Which code scheme a run installs — the `SimConfig` / CLI spelling of
/// the [`CodeScheme`] implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodingKind {
    /// Uniform SEC-DED budget (today's behaviour, byte-compatible).
    Flat,
    /// Position-tiered BCH-style budgets derived from the channel.
    TieredBch,
    /// Locally-rewritable-code model (per-group repair).
    LocalRewrite,
}

impl CodingKind {
    /// Every kind, in sweep order.
    pub const ALL: [CodingKind; 3] = [
        CodingKind::Flat,
        CodingKind::TieredBch,
        CodingKind::LocalRewrite,
    ];

    /// Display name (also the `--coding` spelling).
    pub fn name(self) -> &'static str {
        match self {
            CodingKind::Flat => "flat-ecc",
            CodingKind::TieredBch => "tiered-bch",
            CodingKind::LocalRewrite => "local-rewrite",
        }
    }

    /// Builds the scheme over `channel`. `flat_bits` is the uniform
    /// budget of the flat default; `base_ber` is the raw design rate the
    /// channel-derived schemes size their budgets against.
    pub fn build(
        self,
        channel: LocationChannel,
        flat_bits: u32,
        base_ber: f64,
    ) -> Box<dyn CodeScheme> {
        match self {
            CodingKind::Flat => Box::new(FlatEcc::new(flat_bits)),
            CodingKind::TieredBch => Box::new(TieredBch::from_channel(channel, base_ber)),
            CodingKind::LocalRewrite => Box::new(LocalRewrite::from_channel(channel, base_ber)),
        }
    }
}

impl fmt::Display for CodingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for CodingKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "flat-ecc" | "flat" => Ok(CodingKind::Flat),
            "tiered-bch" | "tiered" => Ok(CodingKind::TieredBch),
            "local-rewrite" | "lrc" => Ok(CodingKind::LocalRewrite),
            other => Err(format!(
                "unknown coding scheme `{other}` (flat-ecc|tiered-bch|local-rewrite)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladder_reram::{AddressMap, Decoded, Geometry, LineAddr};
    use ladder_xbar::{TableConfig, TimingTable};

    fn channel() -> LocationChannel {
        let table = TimingTable::generate(&TableConfig::ladder_default()).expect("table");
        LocationChannel::new(table, AddressMap::new(Geometry::default()))
    }

    fn at_corner(ch: &LocationChannel, wordline: usize, block_slot: usize) -> LineAddr {
        ch.map().encode(&Decoded {
            channel: 0,
            rank: 0,
            bank: 0,
            mat_group: 0,
            wordline,
            block_slot,
        })
    }

    #[test]
    fn budget_grows_with_lambda_and_floors_at_one() {
        assert_eq!(budget_for(0.0, 1e-9), 1);
        let small = budget_for(0.01, 1e-9);
        let big = budget_for(2.0, 1e-9);
        assert!(big > small, "{big} vs {small}");
        assert!(big < LINE_BITS);
    }

    #[test]
    fn flat_ecc_is_uniform() {
        let s = FlatEcc::new(8);
        let ch = channel();
        let near = at_corner(&ch, 0, 0);
        let far = at_corner(&ch, 511, 63);
        assert_eq!(s.correctable_bits(near), 8);
        assert_eq!(s.correctable_bits(far), 8);
        assert_eq!(s.tier(near), None);
        assert_eq!(s.escalation_pct(50, far), 50, "flat keeps the schedule");
        assert!(s.write_amplification() > 0.0);
    }

    #[test]
    fn tiered_budgets_deepen_toward_the_far_corner() {
        let ch = channel();
        let s = TieredBch::from_channel(ch.clone(), 2e-3);
        let b = s.budgets();
        assert!(b[0] <= b[1] && b[1] <= b[2], "{b:?}");
        assert!(b[2] > 1, "far tier must be sized against real pressure");
        let near = at_corner(&ch, 0, 0);
        let far = at_corner(&ch, 511, 63);
        assert_eq!(s.tier(near), Some(0));
        assert_eq!(s.tier(far), Some(2));
        assert!(s.correctable_bits(far) >= s.correctable_bits(near));
        // Thin-budget near tier escalates hardest.
        assert!(s.escalation_pct(50, near) > s.escalation_pct(50, far));
        assert_eq!(s.escalation_pct(50, far), 50);
    }

    #[test]
    fn local_rewrite_scales_with_design_rate() {
        let ch = channel();
        let light = LocalRewrite::from_channel(ch.clone(), 1e-5);
        let heavy = LocalRewrite::from_channel(ch, 5e-2);
        assert!(heavy.per_group() >= light.per_group());
        assert!(heavy.correctable_bits(LineAddr::new(0)) >= 8);
        assert!(heavy.write_amplification() > light.write_amplification() - 1e-12);
        // Local codes stay cheaper than a line-wide BCH of similar depth.
        assert!(light.write_amplification() < 0.25);
    }

    #[test]
    fn kind_round_trips_and_rejects_garbage() {
        for k in CodingKind::ALL {
            assert_eq!(k.name().parse::<CodingKind>().unwrap(), k);
            assert_eq!(format!("{k}"), k.name());
        }
        assert!("tiered".parse::<CodingKind>().is_ok(), "short alias");
        assert!("hamming".parse::<CodingKind>().is_err());
    }

    #[test]
    fn kind_build_dispatches() {
        let ch = channel();
        for k in CodingKind::ALL {
            let s = k.build(ch.clone(), 8, 1e-3);
            assert_eq!(s.name(), k.name());
            assert!(s.correctable_bits(LineAddr::new(0)) >= 1);
        }
    }
}
