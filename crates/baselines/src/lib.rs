//! Prior-work write schemes LADDER is evaluated against.
//!
//! * [`SplitReset`] — two half-RESET stages with FPC compression
//!   (Xu et al., HPCA'15); fixed worst-case stage latencies.
//! * [`BitlineProfiler`] — BLP's in-memory bitline LRS profiling
//!   (Wen et al., TCAD'19); exact bitline content, worst-case wordline
//!   assumption, no metadata traffic.
//! * [`fpc_compressed_bits`] — the frequent-pattern compression model
//!   Split-reset relies on.
//!
//! The *baseline* (fixed worst-case latency), *location-aware* and *Oracle*
//! schemes need no state beyond the timing table and the backing store, so
//! they are implemented directly as memory-controller policies in
//! `ladder-memctrl`.

mod blp;
mod compression;
mod split_reset;

pub use blp::BitlineProfiler;
pub use compression::{fpc_compressed_bits, is_half_compressible};
pub use split_reset::{SplitReset, HALF_RESET_FRACTION};
