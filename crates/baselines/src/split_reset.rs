//! Split-reset write scheduling (Xu et al., HPCA'15).
//!
//! One RESET is split into two half-RESET stages, each writing at most 4
//! bits per mat, so the instantaneous selected current — and hence the IR
//! drop — is roughly halved and each stage completes much faster than a
//! full 8-cell RESET. Lines that FPC-compress to half size fit entirely in
//! one stage; everything else pays two sequential stages. The scheme is
//! content-oblivious beyond compressibility and location-oblivious: both
//! stage latencies are fixed worst-case values.

use crate::compression::is_half_compressible;
use ladder_reram::{LineData, Picos};
use ladder_xbar::{worst_latency_for_selected, CrossbarParams, LatencyLaw};

/// Half-RESET latency as a fraction of the full worst-case RESET.
///
/// Xu et al. (HPCA'15) engineer the two speed grades so that a half-RESET
/// stage — at most 4 bits per mat, driven with the full charge-pump budget
/// redistributed over half the cells — completes in well under half the
/// worst-case time; this constant reproduces their reported grade ratio.
pub const HALF_RESET_FRACTION: f64 = 0.4;

/// Split-reset latency policy.
///
/// # Examples
///
/// ```
/// use ladder_baselines::SplitReset;
/// use ladder_xbar::{calibrate_device_law, CrossbarParams};
///
/// let params = CrossbarParams::default();
/// let law = calibrate_device_law(&params, 29.0, 658.0);
/// let sr = SplitReset::new(&params, law);
/// // A compressible (all-zero) line takes one half-RESET; an
/// // incompressible one takes two.
/// assert_eq!(sr.write_latency(&[0u8; 64]), sr.half_reset_latency());
/// let dense: [u8; 64] = std::array::from_fn(|i| (i as u8).wrapping_mul(0x9D) | 1);
/// assert_eq!(sr.write_latency(&dense), sr.half_reset_latency() * 2);
/// ```
#[derive(Debug, Clone)]
pub struct SplitReset {
    t_half: Picos,
    compressible_writes: u64,
    incompressible_writes: u64,
}

impl SplitReset {
    /// Builds the policy with the standard grade ratio
    /// [`HALF_RESET_FRACTION`].
    pub fn new(params: &CrossbarParams, law: LatencyLaw) -> Self {
        Self::with_fraction(params, law, HALF_RESET_FRACTION)
    }

    /// Builds the policy with an explicit half-RESET grade ratio (for
    /// ablations).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn with_fraction(params: &CrossbarParams, law: LatencyLaw, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction out of range");
        let t_worst = worst_latency_for_selected(params, law, params.selected_cells);
        Self {
            t_half: Picos::from_ps((t_worst as f64 * fraction).ceil() as u64),
            compressible_writes: 0,
            incompressible_writes: 0,
        }
    }

    /// Latency of one half-RESET stage.
    pub fn half_reset_latency(&self) -> Picos {
        self.t_half
    }

    /// Write-recovery latency for a line (one or two stages), without
    /// recording statistics.
    pub fn write_latency(&self, data: &LineData) -> Picos {
        if is_half_compressible(data) {
            self.t_half
        } else {
            self.t_half * 2
        }
    }

    /// Like [`SplitReset::write_latency`] but records the decision.
    pub fn record_write(&mut self, data: &LineData) -> Picos {
        if is_half_compressible(data) {
            self.compressible_writes += 1;
            self.t_half
        } else {
            self.incompressible_writes += 1;
            self.t_half * 2
        }
    }

    /// Fraction of recorded writes that were compressible.
    pub fn compressible_fraction(&self) -> f64 {
        let total = self.compressible_writes + self.incompressible_writes;
        if total == 0 {
            0.0
        } else {
            self.compressible_writes as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladder_xbar::calibrate_device_law;

    fn policy() -> SplitReset {
        let params = CrossbarParams::default();
        let law = calibrate_device_law(&params, 29.0, 658.0);
        SplitReset::new(&params, law)
    }

    #[test]
    fn half_reset_beats_full_worst_case() {
        let sr = policy();
        let full_worst = Picos::from_ns(658.0);
        assert!(sr.half_reset_latency() < full_worst);
        // Even two stages must beat the full worst case for the scheme to
        // deliver its reported ~41 % write-service-time reduction.
        assert!(sr.half_reset_latency() * 2 < full_worst * 2);
    }

    #[test]
    fn statistics_track_decisions() {
        let mut sr = policy();
        sr.record_write(&[0u8; 64]);
        sr.record_write(&[0u8; 64]);
        let mut dense = [0u8; 64];
        let mut x = 3u64;
        for b in &mut dense {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (x >> 33) as u8;
        }
        sr.record_write(&dense);
        assert!((sr.compressible_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn incompressible_takes_exactly_two_stages() {
        let sr = policy();
        let mut dense = [0u8; 64];
        let mut x = 77u64;
        for b in &mut dense {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (x >> 29) as u8;
        }
        assert_eq!(sr.write_latency(&dense), sr.half_reset_latency() * 2);
    }
}
