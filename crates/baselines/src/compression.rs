//! Frequent-pattern compression (FPC; Alameldeen & Wood, 2004) as used by
//! the Split-reset baseline: a line that compresses to half size or better
//! needs only one half-RESET phase.

use ladder_reram::{LineData, LINE_BYTES};

/// Bits one 32-bit word costs under the best matching FPC pattern,
/// including the 3-bit prefix.
fn fpc_word_bits(w: u32) -> u32 {
    let bytes = w.to_le_bytes();
    if w == 0 {
        return 3;
    }
    // 4-bit sign-extended.
    let as_i32 = w as i32;
    if (-8..8).contains(&as_i32) {
        return 3 + 4;
    }
    // 8-bit sign-extended.
    if (-128..128).contains(&as_i32) {
        return 3 + 8;
    }
    // 16-bit sign-extended.
    if (-32768..32768).contains(&as_i32) {
        return 3 + 16;
    }
    // Halfword padded with a zero halfword (upper half zero).
    if w & 0xFFFF_0000 == 0 || w & 0x0000_FFFF == 0 {
        return 3 + 16;
    }
    // Two halfwords, each an 8-bit sign-extended value.
    let lo = (w & 0xFFFF) as u16 as i16;
    let hi = (w >> 16) as u16 as i16;
    if (-128..128).contains(&lo) && (-128..128).contains(&hi) {
        return 3 + 16;
    }
    // Word consisting of repeated bytes.
    if bytes.iter().all(|&b| b == bytes[0]) {
        return 3 + 8;
    }
    3 + 32
}

/// Compressed size of a line in bits under FPC.
///
/// # Examples
///
/// ```
/// use ladder_baselines::fpc_compressed_bits;
///
/// assert_eq!(fpc_compressed_bits(&[0u8; 64]), 3 * 16); // 16 zero words
/// assert!(fpc_compressed_bits(&[0xA7; 64]) < 512); // repeated bytes
/// ```
pub fn fpc_compressed_bits(line: &LineData) -> u32 {
    let mut bits = 0;
    for i in (0..LINE_BYTES).step_by(4) {
        let w = u32::from_le_bytes([line[i], line[i + 1], line[i + 2], line[i + 3]]);
        bits += fpc_word_bits(w);
    }
    bits
}

/// Whether a line is compressible enough for a single half-RESET: its FPC
/// image fits in half the line (≤ 256 bits), so at most 4 bits land in each
/// mat.
pub fn is_half_compressible(line: &LineData) -> bool {
    fpc_compressed_bits(line) <= (LINE_BYTES as u32 * 8) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_from_words(words: &[u32; 16]) -> LineData {
        let mut l = [0u8; LINE_BYTES];
        for (i, w) in words.iter().enumerate() {
            l[i * 4..(i + 1) * 4].copy_from_slice(&w.to_le_bytes());
        }
        l
    }

    #[test]
    fn zero_line_is_maximally_compressible() {
        assert_eq!(fpc_compressed_bits(&[0u8; 64]), 48);
        assert!(is_half_compressible(&[0u8; 64]));
    }

    #[test]
    fn small_integers_compress_well() {
        // Typical pointer-free integer data: values under 128.
        let l = line_from_words(&[1, 2, 3, 100, 0, 5, 7, 127, 0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(is_half_compressible(&l));
    }

    #[test]
    fn random_data_does_not_compress() {
        let mut l = [0u8; LINE_BYTES];
        let mut x = 0x1234_5678_9abc_def0u64;
        for b in &mut l {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (x >> 33) as u8;
        }
        assert!(!is_half_compressible(&l));
    }

    #[test]
    fn negative_small_values_sign_extend() {
        let l = line_from_words(&[(-5i32) as u32; 16]);
        assert_eq!(fpc_compressed_bits(&l), 16 * 7);
    }

    #[test]
    fn pattern_priority_is_consistent() {
        assert_eq!(fpc_word_bits(0), 3);
        assert_eq!(fpc_word_bits(7), 7);
        assert_eq!(fpc_word_bits(100), 11);
        assert_eq!(fpc_word_bits(1000), 19);
        assert_eq!(fpc_word_bits(0x0001_0000), 19); // lower half zero
        assert_eq!(fpc_word_bits(0x7F7F_7F7F), 11); // repeated bytes
        assert_eq!(fpc_word_bits(0xABAB_ABAB), 11); // repeated bytes
        assert_eq!(fpc_word_bits(0xDEAD_BEEF), 35); // incompressible
    }

    #[test]
    fn half_compressible_boundary() {
        // 8 incompressible words (8 × 35 = 280 bits) + 8 zero words (24)
        // = 304 bits > 256 → not compressible.
        let mut words = [0u32; 16];
        for w in words.iter_mut().take(8) {
            *w = 0xDEAD_BEEF;
        }
        assert!(!is_half_compressible(&line_from_words(&words)));
        // 6 incompressible (210) + 10 zeros (30) = 240 ≤ 256 → compressible.
        let mut words2 = [0u32; 16];
        for w in words2.iter_mut().take(6) {
            *w = 0xDEAD_BEEF;
        }
        assert!(is_half_compressible(&line_from_words(&words2)));
    }
}
