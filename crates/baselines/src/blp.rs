//! BLP — bitline-pattern profiling (Wen et al., ICCAD'17 / TCAD'19).
//!
//! BLP adds profiling circuitry *inside the memory* that tracks the LRS
//! population of every bitline, and derives RESET latency from the worst
//! selected bitline (assuming worst-case wordline content) — the dual of
//! LADDER's wordline counters. Because the profiler sits next to the
//! arrays, BLP pays no metadata traffic; its costs are the extra circuitry
//! (the paper's criticism) and the weaker, bitline-only content model.
//!
//! The profiler here maintains exact per-bitline counters incrementally
//! from the write stream, which is what the in-memory circuit would
//! observe.

use ladder_reram::{AddressMap, LineAddr, LineData, LINE_BYTES};
use std::collections::HashMap;

/// Columns of one block slot inside each mat (8 bits of one byte).
const BITS_PER_BYTE: usize = 8;

/// Exact in-memory bitline LRS profiler.
///
/// Counters are keyed by `(mat-array id, block slot)`: a write to block
/// slot `s` selects the same 8 columns in each of the 64 mats of its mat
/// group, and only those 512 bitlines matter for that write's latency.
///
/// # Examples
///
/// ```
/// use ladder_baselines::BitlineProfiler;
/// use ladder_reram::{AddressMap, Geometry, LineAddr};
///
/// let map = AddressMap::new(Geometry::default());
/// let mut p = BitlineProfiler::new();
/// let addr = LineAddr::new(0);
/// assert_eq!(p.worst_selected_bitline(&map, addr), 0);
/// p.record_write(&map, addr, &[0u8; 64], &[0xFF; 64]);
/// assert_eq!(p.worst_selected_bitline(&map, addr), 1);
/// ```
#[derive(Debug, Default)]
pub struct BitlineProfiler {
    /// `(mat array id, slot)` → per-(mat, bit) LRS counts, 64 × 8 entries.
    counters: HashMap<(u64, usize), Box<[u16; LINE_BYTES * BITS_PER_BYTE]>>,
}

impl BitlineProfiler {
    /// Creates an empty profiler (all bitlines HRS).
    pub fn new() -> Self {
        Self::default()
    }

    /// Identifier of the physical mat group stack a line's bitlines belong
    /// to: every wordline of the same (channel, rank, bank, mat group)
    /// shares bitlines.
    fn array_of(map: &AddressMap, addr: LineAddr) -> u64 {
        let d = map.decode(addr);
        let g = map.geometry();
        (((d.channel * g.ranks_per_channel + d.rank) * g.banks_per_rank + d.bank)
            * g.mat_groups_per_bank()
            + d.mat_group) as u64
    }

    /// Updates the profile for a serviced write (old → new stored image).
    pub fn record_write(
        &mut self,
        map: &AddressMap,
        addr: LineAddr,
        old_stored: &LineData,
        new_stored: &LineData,
    ) {
        let key = (Self::array_of(map, addr), addr.block_slot());
        let counters = self
            .counters
            .entry(key)
            .or_insert_with(|| Box::new([0u16; LINE_BYTES * BITS_PER_BYTE]));
        for mat in 0..LINE_BYTES {
            let changed = old_stored[mat] ^ new_stored[mat];
            if changed == 0 {
                continue;
            }
            for bit in 0..BITS_PER_BYTE {
                if (changed >> bit) & 1 == 1 {
                    let c = &mut counters[mat * BITS_PER_BYTE + bit];
                    if (new_stored[mat] >> bit) & 1 == 1 {
                        *c += 1;
                    } else {
                        debug_assert!(*c > 0, "bitline counter underflow");
                        *c = c.saturating_sub(1);
                    }
                }
            }
        }
    }

    /// The LRS population of the worst bitline a write to `addr` selects —
    /// the `C_b` input of BLP's timing table.
    pub fn worst_selected_bitline(&self, map: &AddressMap, addr: LineAddr) -> u16 {
        let key = (Self::array_of(map, addr), addr.block_slot());
        match self.counters.get(&key) {
            // lint: allow(panic-policy) — invariant: per-array counters are a fixed-size nonempty array, max() cannot be None
            Some(c) => *c.iter().max().expect("fixed-size array"),
            None => 0,
        }
    }

    /// Number of distinct (array, slot) profiles allocated — a proxy for
    /// the profiling-circuit state the scheme needs in hardware.
    pub fn tracked_profiles(&self) -> usize {
        self.counters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladder_reram::Geometry;

    fn map() -> AddressMap {
        AddressMap::new(Geometry::default())
    }

    #[test]
    fn counts_rise_and_fall_with_writes() {
        let map = map();
        let mut p = BitlineProfiler::new();
        let a = LineAddr::new(0);
        p.record_write(&map, a, &[0u8; 64], &[0b0000_0001; 64]);
        assert_eq!(p.worst_selected_bitline(&map, a), 1);
        // Another line on a different wordline of the same array and slot
        // deepens the same bitlines.
        let g = map.geometry().clone();
        let pages_per_wl = g.total_banks() as u64;
        let b = LineAddr::new(pages_per_wl * 64); // wordline 1, same slot 0
        assert_eq!(map.decode(b).wordline, 1);
        p.record_write(&map, b, &[0u8; 64], &[0b0000_0001; 64]);
        assert_eq!(p.worst_selected_bitline(&map, a), 2);
        // Clearing one line shrinks the count again.
        p.record_write(&map, a, &[0b0000_0001; 64], &[0u8; 64]);
        assert_eq!(p.worst_selected_bitline(&map, a), 1);
    }

    #[test]
    fn different_slots_do_not_interfere() {
        let map = map();
        let mut p = BitlineProfiler::new();
        let slot0 = LineAddr::new(0);
        let slot1 = LineAddr::new(1);
        p.record_write(&map, slot0, &[0u8; 64], &[0xFF; 64]);
        assert_eq!(p.worst_selected_bitline(&map, slot1), 0);
        assert_eq!(p.worst_selected_bitline(&map, slot0), 1);
    }

    #[test]
    fn different_banks_do_not_interfere() {
        let map = map();
        let mut p = BitlineProfiler::new();
        let a = LineAddr::new(0);
        let other_page = LineAddr::new(64); // different channel
        p.record_write(&map, a, &[0u8; 64], &[0xFF; 64]);
        assert_eq!(p.worst_selected_bitline(&map, other_page), 0);
    }

    #[test]
    fn worst_tracks_the_densest_bitline() {
        let map = map();
        let mut p = BitlineProfiler::new();
        let a = LineAddr::new(0);
        // Byte 3 carries two set bits; all other mats one.
        let mut img = [0b1u8; 64];
        img[3] = 0b11;
        p.record_write(&map, a, &[0u8; 64], &img);
        assert_eq!(p.worst_selected_bitline(&map, a), 1);
        // Stack a second wordline with the same dense bit.
        let g = map.geometry().clone();
        let pages_per_wl = g.total_banks() as u64;
        let b = LineAddr::new(pages_per_wl * 64);
        let mut img2 = [0u8; 64];
        img2[3] = 0b10;
        p.record_write(&map, b, &[0u8; 64], &img2);
        assert_eq!(p.worst_selected_bitline(&map, a), 2);
    }
}
