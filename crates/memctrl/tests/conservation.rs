//! Property tests of the memory controller: every accepted request is
//! eventually serviced exactly once, under every scheme and arbitrary
//! interleavings.

use ladder_baselines::SplitReset;
use ladder_core::LadderVariant;
use ladder_memctrl::{
    standard_tables, FixedWorstPolicy, LadderPolicy, MemCtrlConfig, MemoryController,
    SplitResetPolicy, Tables, WritePolicy,
};
use ladder_reram::{AddressMap, Geometry, Instant, LineAddr};
use ladder_xbar::TableConfig;
use proptest::prelude::*;
use std::sync::OnceLock;

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| standard_tables(&TableConfig::ladder_default()))
}

#[derive(Debug, Clone)]
enum Req {
    Read(u64),
    Write(u64, u8),
    Advance,
}

fn arb_req() -> impl Strategy<Value = Req> {
    prop_oneof![
        (0u64..40_000).prop_map(Req::Read),
        ((0u64..40_000), any::<u8>()).prop_map(|(a, v)| Req::Write(a, v)),
        Just(Req::Advance),
    ]
}

fn policy_for(kind: u8) -> Box<dyn WritePolicy> {
    let lt = &tables().ladder;
    let map = AddressMap::new(Geometry::default());
    match kind % 3 {
        0 => Box::new(FixedWorstPolicy::new(lt)),
        1 => Box::new(SplitResetPolicy::new(SplitReset::new(
            &TableConfig::ladder_default().params,
            lt.law(),
        ))),
        _ => Box::new(LadderPolicy::for_variant(
            LadderVariant::Hybrid,
            lt.clone(),
            map,
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn accepted_requests_are_serviced_exactly_once(
        reqs in prop::collection::vec(arb_req(), 1..250),
        policy_kind in 0u8..3,
    ) {
        let map = AddressMap::new(Geometry::default());
        let mut mc = MemoryController::new(
            MemCtrlConfig::default(),
            map,
            policy_for(policy_kind),
        );
        // Workload addresses sit above every scheme's metadata region.
        let base = 40_000u64 * 64;
        let mut now = Instant::ZERO;
        let mut accepted_reads = 0u64;
        let mut accepted_write_addrs: Vec<u64> = Vec::new();
        let mut completion_ids = std::collections::HashSet::new();
        for r in reqs {
            match r {
                Req::Read(a) => {
                    if let Some(id) = mc.enqueue_read(LineAddr::new(base + a), now) {
                        accepted_reads += 1;
                        prop_assert!(completion_ids.insert(id), "duplicate request id");
                    }
                }
                Req::Write(a, v) => {
                    if mc.enqueue_write(LineAddr::new(base + a), [v; 64], now) {
                        accepted_write_addrs.push(base + a);
                    }
                }
                Req::Advance => {
                    if let Some(t) = mc.next_wake(now) {
                        now = t;
                    }
                }
            }
            mc.process(now);
        }
        mc.finish(now);
        prop_assert!(mc.is_idle());
        let stats = mc.stats();
        prop_assert_eq!(stats.demand_reads, accepted_reads);
        // Coalescing merges re-writes of a line that is still queued, so
        // serviced writes are bounded by accepted and at least the number
        // of distinct addresses accepted.
        accepted_write_addrs.sort_unstable();
        accepted_write_addrs.dedup();
        prop_assert!(stats.data_writes >= accepted_write_addrs.len() as u64);
        // Every completion surfaced exactly once.
        let mut seen = 0u64;
        for (id, _) in mc.take_completed_reads() {
            prop_assert!(completion_ids.contains(&id));
            seen += 1;
        }
        prop_assert!(seen <= accepted_reads);
    }
}
