//! Write-latency policies: one implementation per scheme under comparison.
//!
//! A policy owns the scheme-specific state (tables, profilers, the LADDER
//! engine) and answers two questions for the controller: *what extra memory
//! traffic does this write need before dispatch?* ([`WritePolicy::prepare`])
//! and *how long must its RESET pulse be?* ([`WritePolicy::service`]).

use ladder_baselines::{BitlineProfiler, SplitReset};
use ladder_core::{
    apply_fnw, exact_cw_lrs, DependencyRead, FnwOutcome, FnwPolicy, LadderConfig, LadderEngine,
    LadderVariant,
};
use ladder_reram::{AddressMap, LineAddr, LineData, LineStore, Picos};
use ladder_xbar::{ContentAxis, TableConfig, TimingTable};
use std::collections::HashMap;

/// Extra work a write needs when it enters the write queue.
#[derive(Debug, Clone, Default)]
pub struct PrepResult {
    /// Dependency reads to issue (the write is unready until they return).
    pub reads: Vec<DependencyRead>,
    /// Dirty metadata lines to write back to memory.
    pub writebacks: Vec<LineAddr>,
    /// The request must park in the spill buffer and re-prepare later.
    pub spilled: bool,
}

/// Latency decision and switching activity of one serviced write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceResult {
    /// Write-recovery time for this write.
    pub t_wr: Picos,
    /// Cells switched 0→1.
    pub bits_set: u32,
    /// Cells switched 1→0.
    pub bits_reset: u32,
    /// The content counter the scheme charged the write with (`C^w_lrs`
    /// for LADDER/oracle, `C_b` for BLP), when it tracks one.
    pub cw_lrs: Option<u16>,
}

/// Reference pulse widths for one write location, for trace-time
/// attribution: what an oblivious controller would charge (`worst`) and
/// what location awareness alone would charge (`location`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PulseBounds {
    /// Device worst-case pulse width.
    pub worst: Picos,
    /// This ⟨WL, BL⟩ under worst-case content.
    pub location: Picos,
}

/// Running sums for the estimation-accuracy experiment (paper Fig. 15).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CwTrace {
    /// Σ (estimated − exact) `C^w_lrs` over serviced writes.
    pub diff_sum: i64,
    /// Serviced writes sampled.
    pub samples: u64,
}

impl CwTrace {
    /// Mean estimated-minus-exact counter difference.
    pub fn mean_diff(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.diff_sum as f64 / self.samples as f64
        }
    }
}

/// A write-latency scheme, as seen by the memory controller.
pub trait WritePolicy: std::fmt::Debug + Send {
    /// Scheme name for reports (e.g. `"LADDER-Hybrid"`).
    fn name(&self) -> &'static str;

    /// Called when a data write enters the write queue. The default needs
    /// no extra traffic.
    fn prepare(&mut self, addr: LineAddr, store: &LineStore) -> PrepResult {
        let _ = (addr, store);
        PrepResult::default()
    }

    /// Called when a data write is dispatched: transforms and stores the
    /// data, updates scheme state, and returns the required `tWR`.
    fn service(&mut self, addr: LineAddr, data: LineData, store: &mut LineStore) -> ServiceResult;

    /// `tWR` for a metadata write-back (location-dependent only; metadata
    /// blocks have no counters of their own).
    fn metadata_write_latency(&self, addr: LineAddr) -> Picos {
        let _ = addr;
        Picos::ZERO
    }

    /// Cell-switching counts of a metadata write-back at `addr`, for
    /// energy/endurance accounting. Schemes without metadata return zero.
    fn metadata_writeback_bits(&mut self, addr: LineAddr, store: &LineStore) -> (u32, u32) {
        let _ = (addr, store);
        (0, 0)
    }

    /// Dirty metadata lines to write back at end of simulation.
    fn flush(&mut self) -> Vec<LineAddr> {
        Vec::new()
    }

    /// Estimation-accuracy trace, when the scheme tracks one.
    fn cw_trace(&self) -> Option<CwTrace> {
        None
    }

    /// Metadata-cache hit ratio, when the scheme has a metadata cache.
    fn cache_hit_ratio(&self) -> Option<f64> {
        None
    }

    /// Cumulative metadata-cache `(hits, misses)` counters, when the
    /// scheme has a metadata cache. The controller traces cache activity
    /// as before/after deltas of these, so trace totals reconcile exactly
    /// with the cache's own statistics.
    fn cache_counters(&self) -> Option<(u64, u64)> {
        None
    }

    /// Reference pulse widths for attribution at `addr`, when the scheme
    /// distinguishes them. `None` means the scheme has no
    /// location/content decomposition (its chosen pulse is its own
    /// bound).
    fn pulse_bounds(&self, addr: LineAddr) -> Option<PulseBounds> {
        let _ = addr;
        None
    }

    /// `(flips cancelled, flip opportunities)` under the counting-safe FNW
    /// variant, when the scheme tracks them.
    fn fnw_stats(&self) -> Option<(u64, u64)> {
        None
    }

    /// Simulates a power failure: volatile scheme state is lost and any
    /// recovery procedure (e.g. LADDER's lazy metadata correction, paper
    /// Section 7) runs against the persistent image. Default: stateless
    /// schemes survive crashes untouched.
    fn crash_recover(&mut self, store: &mut LineStore) {
        let _ = store;
    }
}

/// Attribution bounds of a location-aware scheme: the table's worst entry
/// vs. this write location under worst-case content.
fn location_bounds(table: &TimingTable, map: &AddressMap, addr: LineAddr) -> PulseBounds {
    let (wl, col) = map.write_location(addr);
    PulseBounds {
        worst: Picos::from_ps(table.worst_ps()),
        location: Picos::from_ps(table.lookup_ps(wl, col, usize::MAX)),
    }
}

/// Applies FNW against the stored image and persists the result.
fn store_with_fnw(
    addr: LineAddr,
    data: &LineData,
    store: &mut LineStore,
    policy: FnwPolicy,
) -> FnwOutcome {
    let old = store.read(addr);
    let out = apply_fnw(data, &old, policy);
    store.write(addr, out.stored);
    out
}

/// The pessimistic baseline: every write uses the device's worst-case
/// latency, with classical FNW.
#[derive(Debug)]
pub struct FixedWorstPolicy {
    t_worst: Picos,
}

impl FixedWorstPolicy {
    /// Builds the baseline from the shared timing table's worst entry.
    pub fn new(table: &TimingTable) -> Self {
        Self {
            t_worst: Picos::from_ps(table.worst_ps()),
        }
    }
}

impl WritePolicy for FixedWorstPolicy {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn service(&mut self, addr: LineAddr, data: LineData, store: &mut LineStore) -> ServiceResult {
        let out = store_with_fnw(addr, &data, store, FnwPolicy::Classic);
        ServiceResult {
            t_wr: self.t_worst,
            bits_set: out.bits_set,
            bits_reset: out.bits_reset,
            cw_lrs: None,
        }
    }

    fn pulse_bounds(&self, _addr: LineAddr) -> Option<PulseBounds> {
        // Oblivious on both axes: charged == location bound == worst.
        Some(PulseBounds {
            worst: self.t_worst,
            location: self.t_worst,
        })
    }
}

/// Location-aware writes assuming worst-case content (the middle bar of the
/// paper's Fig. 2 motivation study).
#[derive(Debug)]
pub struct LocationAwarePolicy {
    table: TimingTable,
    map: AddressMap,
}

impl LocationAwarePolicy {
    /// Builds the policy over the shared LADDER timing table.
    pub fn new(table: TimingTable, map: AddressMap) -> Self {
        Self { table, map }
    }
}

impl WritePolicy for LocationAwarePolicy {
    fn name(&self) -> &'static str {
        "location-aware"
    }

    fn service(&mut self, addr: LineAddr, data: LineData, store: &mut LineStore) -> ServiceResult {
        let out = store_with_fnw(addr, &data, store, FnwPolicy::Classic);
        let (wl, col) = self.map.write_location(addr);
        ServiceResult {
            t_wr: Picos::from_ps(self.table.lookup_ps(wl, col, usize::MAX)),
            bits_set: out.bits_set,
            bits_reset: out.bits_reset,
            cw_lrs: None,
        }
    }

    fn pulse_bounds(&self, addr: LineAddr) -> Option<PulseBounds> {
        Some(location_bounds(&self.table, &self.map, addr))
    }
}

/// The Oracle: exact `C^w_lrs` known for free (no metadata, no traffic) —
/// the upper bound for any data/location-aware scheme.
#[derive(Debug)]
pub struct OraclePolicy {
    table: TimingTable,
    map: AddressMap,
}

impl OraclePolicy {
    /// Builds the oracle over the shared LADDER timing table.
    pub fn new(table: TimingTable, map: AddressMap) -> Self {
        Self { table, map }
    }
}

impl WritePolicy for OraclePolicy {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn service(&mut self, addr: LineAddr, data: LineData, store: &mut LineStore) -> ServiceResult {
        let out = store_with_fnw(addr, &data, store, FnwPolicy::Classic);
        let wlg = self.map.wlg_of(addr);
        let images: Vec<LineData> = self.map.lines_of_wlg(wlg).map(|l| store.read(l)).collect();
        let cw = exact_cw_lrs(images.iter());
        let (wl, col) = self.map.write_location(addr);
        ServiceResult {
            t_wr: Picos::from_ps(self.table.lookup_ps(wl, col, cw as usize)),
            bits_set: out.bits_set,
            bits_reset: out.bits_reset,
            cw_lrs: Some(cw),
        }
    }

    fn pulse_bounds(&self, addr: LineAddr) -> Option<PulseBounds> {
        Some(location_bounds(&self.table, &self.map, addr))
    }
}

/// BLP: exact bitline content from in-memory profiling circuitry,
/// worst-case wordline assumption.
#[derive(Debug)]
pub struct BlpPolicy {
    table: TimingTable,
    map: AddressMap,
    profiler: BitlineProfiler,
}

impl BlpPolicy {
    /// Builds BLP; `table` must use [`ContentAxis::Bitline`].
    ///
    /// # Panics
    ///
    /// Panics if the table's content axis is not the bitline axis.
    pub fn new(table: TimingTable, map: AddressMap) -> Self {
        assert_eq!(
            table.content_axis(),
            ContentAxis::Bitline,
            "BLP needs a bitline-content timing table"
        );
        Self {
            table,
            map,
            profiler: BitlineProfiler::new(),
        }
    }
}

impl WritePolicy for BlpPolicy {
    fn name(&self) -> &'static str {
        "BLP"
    }

    fn service(&mut self, addr: LineAddr, data: LineData, store: &mut LineStore) -> ServiceResult {
        let cb = self.profiler.worst_selected_bitline(&self.map, addr);
        let old = store.read(addr);
        let out = apply_fnw(&data, &old, FnwPolicy::Classic);
        store.write(addr, out.stored);
        self.profiler
            .record_write(&self.map, addr, &old, &out.stored);
        let (wl, col) = self.map.write_location(addr);
        ServiceResult {
            t_wr: Picos::from_ps(self.table.lookup_ps(wl, col, cb as usize)),
            bits_set: out.bits_set,
            bits_reset: out.bits_reset,
            cw_lrs: Some(cb),
        }
    }

    fn pulse_bounds(&self, addr: LineAddr) -> Option<PulseBounds> {
        Some(location_bounds(&self.table, &self.map, addr))
    }
}

/// Split-reset: one or two fixed-latency half-RESET stages, gated by FPC
/// compressibility.
#[derive(Debug)]
pub struct SplitResetPolicy {
    split: SplitReset,
}

impl SplitResetPolicy {
    /// Builds the policy from the scheme state.
    pub fn new(split: SplitReset) -> Self {
        Self { split }
    }
}

impl WritePolicy for SplitResetPolicy {
    fn name(&self) -> &'static str {
        "Split-reset"
    }

    fn service(&mut self, addr: LineAddr, data: LineData, store: &mut LineStore) -> ServiceResult {
        // Compressibility is judged on the logical data, before FNW.
        let t_wr = self.split.record_write(&data);
        let out = store_with_fnw(addr, &data, store, FnwPolicy::Classic);
        ServiceResult {
            t_wr,
            bits_set: out.bits_set,
            bits_reset: out.bits_reset,
            cw_lrs: None,
        }
    }
}

/// LADDER (any variant): the engine plus the wordline-content timing table.
#[derive(Debug)]
pub struct LadderPolicy {
    engine: LadderEngine,
    table: TimingTable,
    map: AddressMap,
    trace: CwTrace,
    /// Last-persisted metadata images, for write-back switching statistics.
    persisted_meta: HashMap<u64, LineData>,
}

impl LadderPolicy {
    /// Builds a LADDER policy; `table` must use the wordline content axis.
    ///
    /// # Panics
    ///
    /// Panics if the table's content axis is not the wordline axis.
    pub fn new(config: LadderConfig, table: TimingTable, map: AddressMap) -> Self {
        assert_eq!(
            table.content_axis(),
            ContentAxis::Wordline,
            "LADDER needs a wordline-content timing table"
        );
        let engine = LadderEngine::new(config, map.clone());
        Self {
            engine,
            table,
            map,
            trace: CwTrace::default(),
            persisted_meta: HashMap::new(),
        }
    }

    /// Convenience constructor with the variant's default configuration.
    pub fn for_variant(variant: LadderVariant, table: TimingTable, map: AddressMap) -> Self {
        Self::new(LadderConfig::for_variant(variant), table, map)
    }

    /// The underlying engine (stats, layout).
    pub fn engine(&self) -> &LadderEngine {
        &self.engine
    }
}

impl WritePolicy for LadderPolicy {
    fn name(&self) -> &'static str {
        match self.engine.config().variant {
            LadderVariant::Basic => "LADDER-Basic",
            LadderVariant::Est => "LADDER-Est",
            LadderVariant::Hybrid => "LADDER-Hybrid",
        }
    }

    fn prepare(&mut self, addr: LineAddr, store: &LineStore) -> PrepResult {
        let _ = store;
        let out = self.engine.prepare_write(addr);
        PrepResult {
            reads: out.reads,
            writebacks: out.writebacks,
            spilled: out.spilled,
        }
    }

    fn service(&mut self, addr: LineAddr, data: LineData, store: &mut LineStore) -> ServiceResult {
        let out = self.engine.service_write(addr, data, store);
        if let Some(exact) = out.cw_exact {
            self.trace.diff_sum += out.cw_lrs as i64 - exact as i64;
            self.trace.samples += 1;
        }
        ServiceResult {
            t_wr: Picos::from_ps(self.table.lookup_ps(
                out.wordline,
                out.worst_col,
                out.cw_lrs as usize,
            )),
            bits_set: out.bits_set,
            bits_reset: out.bits_reset,
            cw_lrs: Some(out.cw_lrs),
        }
    }

    fn metadata_write_latency(&self, addr: LineAddr) -> Picos {
        let (wl, col) = self.map.write_location(addr);
        Picos::from_ps(self.table.lookup_ps(wl, col, usize::MAX))
    }

    fn flush(&mut self) -> Vec<LineAddr> {
        self.engine.flush_metadata()
    }

    fn cw_trace(&self) -> Option<CwTrace> {
        if self.trace.samples > 0 {
            Some(self.trace)
        } else {
            None
        }
    }

    fn cache_hit_ratio(&self) -> Option<f64> {
        Some(self.engine.cache().stats().hit_ratio())
    }

    fn cache_counters(&self) -> Option<(u64, u64)> {
        let s = self.engine.cache().stats();
        Some((s.hits, s.misses))
    }

    fn pulse_bounds(&self, addr: LineAddr) -> Option<PulseBounds> {
        Some(location_bounds(&self.table, &self.map, addr))
    }

    fn fnw_stats(&self) -> Option<(u64, u64)> {
        let s = self.engine.stats();
        Some((s.flips_cancelled, s.flip_opportunities))
    }

    fn crash_recover(&mut self, store: &mut LineStore) {
        self.engine.lazy_crash_correction(store);
    }

    fn metadata_writeback_bits(&mut self, addr: LineAddr, store: &LineStore) -> (u32, u32) {
        let new = store.read(addr);
        let old = self
            .persisted_meta
            .insert(addr.raw(), new)
            .unwrap_or([0; 64]);
        ladder_reram::bits::delta_ones(&new, &old)
    }
}

/// The two timing tables every scheme comparison shares: the wordline
/// content axis (LADDER and the location-aware baselines) and the bitline
/// content axis (BLP).
#[derive(Debug, Clone)]
pub struct Tables {
    /// Wordline-content-axis table (LADDER, location-aware, oracle,
    /// baseline worst case).
    pub ladder: TimingTable,
    /// Bitline-content-axis table (BLP).
    pub blp: TimingTable,
}

impl Tables {
    /// Both tables with their latency dynamic range shrunk by `factor`
    /// (the Section 7 process-variability study).
    pub fn shrink_dynamic_range(&self, factor: f64) -> Tables {
        Tables {
            ladder: self.ladder.shrink_dynamic_range(factor),
            blp: self.blp.shrink_dynamic_range(factor),
        }
    }
}

/// Builds the standard timing tables shared by every scheme in one
/// comparison.
///
/// # Panics
///
/// Panics if table generation fails (the analytic source is infallible).
pub fn standard_tables(cfg: &TableConfig) -> Tables {
    // lint: allow(panic-policy) — invariant: the analytic table source is infallible, documented under # Panics
    let ladder = TimingTable::generate(cfg).expect("wordline table");
    let mut blp_cfg = cfg.clone();
    blp_cfg.content_axis = ContentAxis::Bitline;
    // lint: allow(panic-policy) — invariant: the analytic table source is infallible, documented under # Panics
    let blp = TimingTable::generate(&blp_cfg).expect("bitline table");
    Tables { ladder, blp }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladder_reram::Geometry;
    use ladder_xbar::TableConfig;

    fn setup() -> (TimingTable, TimingTable, AddressMap) {
        let t = standard_tables(&TableConfig::ladder_default());
        (t.ladder, t.blp, AddressMap::new(Geometry::default()))
    }

    fn sparse_line() -> LineData {
        let mut l = [0u8; 64];
        l[0] = 1;
        l
    }

    #[test]
    fn baseline_always_uses_worst_case() {
        let (table, _, _) = setup();
        let worst = Picos::from_ps(table.worst_ps());
        let mut p = FixedWorstPolicy::new(&table);
        let mut store = LineStore::new();
        for addr in [0u64, 999, 123456] {
            let r = p.service(LineAddr::new(addr), sparse_line(), &mut store);
            assert_eq!(r.t_wr, worst);
        }
    }

    #[test]
    fn scheme_latency_ordering_holds() {
        // For any given write, oracle ≤ LADDER ≤ location-aware ≤ baseline.
        let (table, _, map) = setup();
        let mut store_a = LineStore::new();
        let mut store_b = LineStore::new();
        let mut store_c = LineStore::new();
        let mut baseline = FixedWorstPolicy::new(&table);
        let mut loc = LocationAwarePolicy::new(table.clone(), map.clone());
        let mut oracle = OraclePolicy::new(table.clone(), map.clone());
        let mut ladder = LadderPolicy::for_variant(LadderVariant::Est, table.clone(), map.clone());
        let mut store_d = LineStore::new();
        let first_data = ladder.engine().layout().first_data_page() * 64;
        for i in 0..200u64 {
            let addr = LineAddr::new(first_data + i * 37 % 10_000);
            let data = sparse_line();
            let b = baseline.service(addr, data, &mut store_a).t_wr;
            let l = loc.service(addr, data, &mut store_b).t_wr;
            let o = oracle.service(addr, data, &mut store_c).t_wr;
            ladder.prepare(addr, &store_d);
            let d = ladder.service(addr, data, &mut store_d).t_wr;
            assert!(o <= d, "oracle {o} must not exceed LADDER {d}");
            assert!(d <= l, "LADDER {d} must not exceed location-aware {l}");
            assert!(l <= b, "location-aware {l} must not exceed baseline {b}");
        }
    }

    #[test]
    fn blp_latency_tracks_bitline_content() {
        let (_, blp_table, map) = setup();
        let mut p = BlpPolicy::new(blp_table, map.clone());
        let mut store = LineStore::new();
        // Probe a far location (high wordline, last slot → far columns):
        // near the drivers the latency is content-insensitive by physics.
        let g = map.geometry().clone();
        let pages_per_wl = g.total_banks() as u64;
        let addr = LineAddr::new(400 * pages_per_wl * 64 + 63);
        let empty = p.service(addr, sparse_line(), &mut store).t_wr;
        // Fill many other wordlines of the same array/slot with data dense
        // enough to raise bitline counts but balanced enough (32 ones per
        // 64-bit word) that classical FNW stores it verbatim.
        for wl in 0..400u64 {
            let a = LineAddr::new(wl * pages_per_wl * 64 + 63);
            p.service(a, [0x0F; 64], &mut store);
        }
        let dense = p.service(addr, sparse_line(), &mut store).t_wr;
        assert!(dense > empty, "denser bitlines must slow RESET");
    }

    #[test]
    fn split_reset_two_grades_only() {
        let (table, _, _) = setup();
        let params = ladder_xbar::CrossbarParams::default();
        let law = table.law();
        let mut p = SplitResetPolicy::new(SplitReset::new(&params, law));
        let mut store = LineStore::new();
        let fast = p.service(LineAddr::new(0), [0u8; 64], &mut store).t_wr;
        let mut dense = [0u8; 64];
        let mut x = 5u64;
        for b in &mut dense {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (x >> 30) as u8;
        }
        let slow = p.service(LineAddr::new(1), dense, &mut store).t_wr;
        assert_eq!(slow, fast * 2);
    }

    #[test]
    fn ladder_metadata_write_latency_is_location_only() {
        let (table, _, map) = setup();
        let p = LadderPolicy::for_variant(LadderVariant::Est, table.clone(), map);
        // Metadata lives in the lowest pages → lowest wordlines → fast-ish,
        // but always assumes worst-case content for its band.
        let lat = p.metadata_write_latency(LineAddr::new(0));
        assert_eq!(lat, Picos::from_ps(table.lookup_ps(0, 7, usize::MAX)));
    }

    #[test]
    fn basic_variant_reports_exact_trace() {
        let (table, _, map) = setup();
        let mut cfg = LadderConfig::for_variant(LadderVariant::Basic);
        cfg.track_exact = true;
        let mut p = LadderPolicy::new(cfg, table, map);
        let mut store = LineStore::new();
        let first_data = p.engine().layout().first_data_page() * 64;
        for i in 0..20 {
            let addr = LineAddr::new(first_data + i);
            p.prepare(addr, &store);
            p.service(addr, [0x0F; 64], &mut store);
        }
        let trace = p.cw_trace().expect("tracking enabled");
        assert_eq!(trace.samples, 20);
        // Basic uses exact counters: estimate == exact at every step is not
        // guaranteed mid-page (the counter lags by the in-flight line), but
        // the mean difference must be tiny.
        assert!(trace.mean_diff().abs() <= 8.0);
    }
}
