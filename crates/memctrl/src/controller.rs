//! Cycle-level memory controller: read/write queues, bank and bus timing,
//! write-drain scheduling and the dependency plumbing LADDER needs.
//!
//! The controller follows the paper's setup (Table 2): a 32-entry read
//! queue and 64-entry write queue per channel, switching into write-drain
//! mode at 85 % write-queue occupancy. Reads are blocked while a channel
//! drains writes — the coupling that makes long RESETs hurt read latency
//! and IPC. Dependency reads (stale blocks, metadata fills) are issued in
//! both modes so queued writes can become ready; writes whose metadata and
//! stale block are ready are prioritized, and writes whose metadata could
//! not be pinned park in a spill buffer that retries on write→read
//! switches, as Section 3.3 describes.

use crate::policy::WritePolicy;
use ladder_core::{ReadKind, SpillBuffer};
use ladder_reram::{
    AddressMap, DeviceTiming, EventQueue, Instant, LineAddr, LineData, LineStore, Picos, WlgId,
};
use ladder_trace::{
    LatencyHistogram, Mergeable, PulseKind, ReadClass, TraceRecord, TraceRecorder, C_LRS_UNTRACKED,
};
use std::collections::{HashMap, VecDeque};

/// Controller configuration (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemCtrlConfig {
    /// Read-queue entries per channel.
    pub rdq_capacity: usize,
    /// Write-queue entries per channel.
    pub wrq_capacity: usize,
    /// Enter write-drain mode at this occupancy.
    pub drain_high: usize,
    /// Leave write-drain mode at (or below) this occupancy.
    pub drain_low: usize,
    /// Spill-buffer entries.
    pub spill_capacity: usize,
    /// Device access timings.
    pub timing: DeviceTiming,
}

impl Default for MemCtrlConfig {
    fn default() -> Self {
        Self {
            rdq_capacity: 32,
            wrq_capacity: 64,
            drain_high: 55, // ceil(0.85 × 64)
            drain_low: 32,
            spill_capacity: 16,
            timing: DeviceTiming::default(),
        }
    }
}

/// Identifier of an enqueued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(pub u64);

/// Observer notified on every serviced write (wear models hook in here).
pub trait AccessObserver: Send {
    /// A write switched `bits_set` cells 0→1 and `bits_reset` cells 1→0 at
    /// `addr`.
    fn on_write(&mut self, addr: LineAddr, bits_set: u32, bits_reset: u32);
}

/// Device fault model driving program-and-verify (`ladder-faults`
/// implements this; the trait lives here so the controller stays free of a
/// dependency cycle, like [`AccessObserver`]).
///
/// Semantics of one serviced data write: the controller fires the initial
/// RESET pulse (attempt 0) and asks the injector how many bits failed to
/// program. Every failed verify is followed by exactly one escalated retry
/// pulse while the bounded budget lasts — so `retries_issued ==
/// failed_verifies` is a controller invariant. Bits still failing after
/// the final pulse are handed to [`FaultInjector::resolve`] (the ECC /
/// retire-and-remap layer); no further verify is charged for them, since
/// no retry could act on it.
///
/// The verify read after a *successful* pulse is not charged separately:
/// RESET termination sensing is part of the modeled pulse, so a fault-free
/// injector adds zero latency and a rate-0.0 run is bit-identical to the
/// no-injector path.
pub trait FaultInjector: Send {
    /// Retry-pulse budget per write (0 disables retries).
    fn max_retries(&self) -> u32;

    /// Pulse width of retry `attempt` (1-based), given the scheme's base
    /// `tWR`. Escalated pulses are longer — the overdrive that makes the
    /// retry more likely to stick.
    fn retry_t_wr(&self, base: Picos, attempt: u32) -> Picos;

    /// Location-aware variant of [`Self::retry_t_wr`]: a coding layer may
    /// escalate harder at margin-poor positions. The default ignores the
    /// address, so flat injectors keep their legacy pulse widths.
    fn retry_t_wr_at(&self, addr: LineAddr, base: Picos, attempt: u32) -> Picos {
        let _ = addr;
        self.retry_t_wr(base, attempt)
    }

    /// Simulates program attempt `attempt` (0 = the initial pulse) of the
    /// data most recently stored at `addr`, returning how many bits failed
    /// to switch. May install permanent faults into the store's masks.
    fn program(&mut self, addr: LineAddr, store: &mut LineStore, attempt: u32, t_wr: Picos) -> u32;

    /// Final disposition of `residual_bits` still failing after the retry
    /// budget (the ECC / remap layer); see [`Resolution`].
    fn resolve(&mut self, addr: LineAddr, residual_bits: u32, store: &mut LineStore) -> Resolution;
}

/// What [`FaultInjector::resolve`] did with a line's residual failed bits.
///
/// `corrected` carries the legacy contract (`true` = the correction budget
/// covered the residue, `false` = data loss). The optional fields describe
/// *how*, for trace records: `tier` is set when a tiered code resolved the
/// line, `remapped` is `(page, frame)` when the resolve moved the page to a
/// new physical frame. Flat-ECC + retire-backend injectors leave both
/// `None`, keeping default-mode traces byte-identical to the boolean era.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// Whether the correction budget covered the residual bits.
    pub corrected: bool,
    /// Protection tier that resolved the line, when the scheme is tiered.
    pub tier: Option<u32>,
    /// `(page, frame)`: the faulty page and the physical frame now serving
    /// it, when the resolve triggered a decoder remap worth tracing.
    pub remapped: Option<(u64, u64)>,
}

impl Resolution {
    /// A plain corrected/uncorrectable outcome with no tier or remap
    /// detail — the legacy boolean, lifted.
    pub fn plain(corrected: bool) -> Self {
        Self {
            corrected,
            tier: None,
            remapped: None,
        }
    }
}

/// Aggregate controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand (CPU) reads completed.
    pub demand_reads: u64,
    /// Total demand read latency (enqueue → data burst done).
    pub demand_read_latency: Picos,
    /// Stale-memory-block reads issued.
    pub smb_reads: u64,
    /// Metadata fill reads issued.
    pub metadata_reads: u64,
    /// Data writes serviced.
    pub data_writes: u64,
    /// Metadata write-backs serviced.
    pub metadata_writes: u64,
    /// Total service time of data writes (dispatch → completion).
    pub write_service_time: Picos,
    /// Total write-recovery time across data writes.
    pub t_wr_data: Picos,
    /// Total write-recovery time across metadata writes.
    pub t_wr_metadata: Picos,
    /// Cells switched 0→1 (all writes).
    pub bits_set: u64,
    /// Cells switched 1→0 (all writes).
    pub bits_reset: u64,
    /// Read→write drain transitions.
    pub drain_switches: u64,
    /// Highest write-queue occupancy seen.
    pub wrq_peak: usize,
    /// Highest spill-buffer occupancy seen.
    pub spill_peak: usize,
    /// Verify reads that found failed bits (program-and-verify).
    pub failed_verifies: u64,
    /// Escalated retry pulses issued. Equals `failed_verifies` by
    /// construction: every failed verify triggers exactly one retry.
    pub retries_issued: u64,
    /// Total extra service time spent on verify reads and retry pulses.
    pub retry_time: Picos,
    /// Residual failed bits absorbed by the per-line correction budget.
    pub ecc_corrected_bits: u64,
    /// Data writes whose residual failed bits exceeded the correction
    /// budget (data loss).
    pub uncorrectable_writes: u64,
}

impl MemStats {
    /// Folds another controller's statistics into this one (peaks take
    /// the maximum; everything else adds).
    pub fn merge(&mut self, other: &MemStats) {
        self.demand_reads = self.demand_reads.saturating_add(other.demand_reads);
        self.demand_read_latency += other.demand_read_latency;
        self.smb_reads = self.smb_reads.saturating_add(other.smb_reads);
        self.metadata_reads = self.metadata_reads.saturating_add(other.metadata_reads);
        self.data_writes = self.data_writes.saturating_add(other.data_writes);
        self.metadata_writes = self.metadata_writes.saturating_add(other.metadata_writes);
        self.write_service_time += other.write_service_time;
        self.t_wr_data += other.t_wr_data;
        self.t_wr_metadata += other.t_wr_metadata;
        self.bits_set = self.bits_set.saturating_add(other.bits_set);
        self.bits_reset = self.bits_reset.saturating_add(other.bits_reset);
        self.drain_switches = self.drain_switches.saturating_add(other.drain_switches);
        self.wrq_peak = self.wrq_peak.max(other.wrq_peak);
        self.spill_peak = self.spill_peak.max(other.spill_peak);
        self.failed_verifies = self.failed_verifies.saturating_add(other.failed_verifies);
        self.retries_issued = self.retries_issued.saturating_add(other.retries_issued);
        self.retry_time += other.retry_time;
        self.ecc_corrected_bits = self
            .ecc_corrected_bits
            .saturating_add(other.ecc_corrected_bits);
        self.uncorrectable_writes = self
            .uncorrectable_writes
            .saturating_add(other.uncorrectable_writes);
    }

    /// Mean demand read latency.
    pub fn avg_read_latency(&self) -> Picos {
        if self.demand_reads == 0 {
            Picos::ZERO
        } else {
            self.demand_read_latency / self.demand_reads
        }
    }

    /// Mean data-write service time.
    pub fn avg_write_service(&self) -> Picos {
        if self.data_writes == 0 {
            Picos::ZERO
        } else {
            self.write_service_time / self.data_writes
        }
    }

    /// Reads beyond demand reads, as a fraction of demand reads
    /// (paper Fig. 14a).
    pub fn additional_read_fraction(&self) -> f64 {
        if self.demand_reads == 0 {
            0.0
        } else {
            (self.smb_reads + self.metadata_reads) as f64 / self.demand_reads as f64
        }
    }

    /// Writes beyond data writes, as a fraction of data writes
    /// (paper Fig. 14b).
    pub fn additional_write_fraction(&self) -> f64 {
        if self.data_writes == 0 {
            0.0
        } else {
            self.metadata_writes as f64 / self.data_writes as f64
        }
    }
}

impl Mergeable for MemStats {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Read,
    WriteDrain,
}

/// Why the controller registered a wake-up.
///
/// Every state change that could make new progress possible schedules one
/// of these on the controller's internal wake queue at the precise instant
/// the opportunity opens. An external event pump absorbs them through
/// [`MemoryController::take_wakes`]; standalone drivers step time with
/// [`MemoryController::next_wake`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtrlWake {
    /// New work entered a queue: a demand read or write, a dependency
    /// read, or a metadata write-back.
    WorkArrived,
    /// A bank finishes its current operation and can accept the next.
    BankFree,
    /// A write left the write queue, freeing a slot a rejected writer can
    /// claim.
    QueueSlotFree,
    /// The last outstanding dependency read for a queued write completes,
    /// making that write dispatchable.
    DepReady,
    /// A channel switched between read mode and write-drain mode.
    ModeSwitch,
    /// A program-and-verify retry pulse begins on a bank (the bank stays
    /// occupied until the last pulse's data burst completes).
    RetryPulse,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RKind {
    Demand,
    Smb,
    Metadata,
}

#[derive(Debug, Clone)]
struct ReadEntry {
    id: ReqId,
    /// The target's flat bank, decoded once at enqueue: the issue
    /// scheduler tests every queued entry's bank against the busy table
    /// on every pick, and re-decoding per test dominated the hot loop.
    /// The address itself is not needed after enqueue.
    bank: usize,
    kind: RKind,
    enqueued_at: Instant,
    for_write: Option<ReqId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WKind {
    Data,
    MetadataWriteback,
}

#[derive(Debug, Clone)]
struct WriteEntry {
    id: ReqId,
    addr: LineAddr,
    /// `addr`'s flat bank, decoded once at enqueue (see [`ReadEntry::bank`]).
    bank: usize,
    data: LineData,
    kind: WKind,
    prepared: bool,
    enqueued_at: Instant,
}

#[derive(Debug, Clone, Copy)]
struct DepState {
    outstanding: u32,
    ready_at: Instant,
}

/// Future data-burst reservations on one channel's bus, kept sorted.
///
/// Bursts are short (tBURST = 5 ns) relative to bank occupancy, so a read
/// issued while a long write occupies another bank must be able to claim an
/// earlier bus slot than the write's — a single free-after watermark would
/// serialize bursts in issue order and fabricate enormous queueing delays.
#[derive(Debug, Default)]
struct BusSchedule {
    /// Sorted, non-overlapping `(start, end)` reservations in ps.
    slots: VecDeque<(u64, u64)>,
}

impl BusSchedule {
    /// Reserves the earliest `dur`-long slot starting at or after
    /// `nominal`, returning the slot's start.
    fn reserve(&mut self, nominal: Instant, dur: Picos, now: Instant) -> Instant {
        while let Some(&(_, end)) = self.slots.front() {
            if end <= now.as_ps() {
                self.slots.pop_front();
            } else {
                break;
            }
        }
        let dur = dur.as_ps();
        let mut start = nominal.as_ps();
        let mut insert_at = self.slots.len();
        for (i, &(s, e)) in self.slots.iter().enumerate() {
            if start + dur <= s {
                insert_at = i;
                break;
            }
            if start < e {
                start = e;
            }
        }
        self.slots.insert(insert_at, (start, start + dur));
        Instant::from_ps(start)
    }
}

#[derive(Debug)]
struct Channel {
    rdq: VecDeque<ReadEntry>,
    dep_overflow: VecDeque<ReadEntry>,
    wrq: Vec<WriteEntry>,
    write_overflow: VecDeque<WriteEntry>,
    mode: Mode,
    bus: BusSchedule,
}

impl Channel {
    fn new() -> Self {
        Self {
            rdq: VecDeque::new(),
            dep_overflow: VecDeque::new(),
            wrq: Vec::new(),
            write_overflow: VecDeque::new(),
            mode: Mode::Read,
            bus: BusSchedule::default(),
        }
    }

    fn has_work(&self) -> bool {
        !self.rdq.is_empty()
            || !self.wrq.is_empty()
            || !self.dep_overflow.is_empty()
            || !self.write_overflow.is_empty()
    }
}

/// The memory controller.
///
/// Drive it with [`MemoryController::process`] at event times. The
/// controller is schedule-based: every enqueue and issue registers the
/// precise instant at which new progress becomes possible (a
/// [`CtrlWake`]). Standalone drivers step time with
/// [`MemoryController::next_wake`]; an event pump drains the registered
/// wakes with [`MemoryController::take_wakes`] and dispatches them from
/// its own queue. Completed demand reads are collected through
/// [`MemoryController::take_completed_reads`].
#[derive(Debug)]
pub struct MemoryController {
    cfg: MemCtrlConfig,
    map: AddressMap,
    policy: Box<dyn WritePolicy>,
    store: LineStore,
    channels: Vec<Channel>,
    banks: Vec<Instant>,
    write_deps: HashMap<ReqId, DepState>,
    spill: SpillBuffer,
    completed_reads: Vec<(ReqId, Instant)>,
    next_id: u64,
    stats: MemStats,
    read_histogram: LatencyHistogram,
    observer: Option<Box<dyn ObserverDebug>>,
    fault_injector: Option<Box<dyn InjectorDebug>>,
    wakes: EventQueue<CtrlWake>,
    recorder: TraceRecorder,
}

/// Internal marker combining the observer trait with Debug for derive.
trait ObserverDebug: AccessObserver {
    fn as_observer(&mut self) -> &mut dyn AccessObserver;
}

impl std::fmt::Debug for dyn ObserverDebug {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AccessObserver")
    }
}

impl<T: AccessObserver> ObserverDebug for T {
    fn as_observer(&mut self) -> &mut dyn AccessObserver {
        self
    }
}

/// Internal marker combining the fault-injector trait with Debug for
/// derive.
trait InjectorDebug: FaultInjector {}

impl std::fmt::Debug for dyn InjectorDebug {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FaultInjector")
    }
}

impl<T: FaultInjector> InjectorDebug for T {}

impl MemoryController {
    /// Creates a controller over a fresh (all-zero) memory image.
    pub fn new(cfg: MemCtrlConfig, map: AddressMap, policy: Box<dyn WritePolicy>) -> Self {
        let channels = (0..map.geometry().channels)
            .map(|_| Channel::new())
            .collect();
        let banks = vec![Instant::ZERO; map.geometry().total_banks()];
        Self {
            spill: SpillBuffer::new(cfg.spill_capacity),
            cfg,
            map,
            policy,
            store: LineStore::new(),
            channels,
            banks,
            write_deps: HashMap::new(),
            completed_reads: Vec::new(),
            next_id: 0,
            stats: MemStats::default(),
            read_histogram: LatencyHistogram::new(),
            observer: None,
            fault_injector: None,
            wakes: EventQueue::new(),
            recorder: TraceRecorder::disabled(),
        }
    }

    /// Installs a trace recorder (pass [`TraceRecorder::enabled`] to start
    /// capturing; the default is the free disabled recorder).
    pub fn set_trace_recorder(&mut self, recorder: TraceRecorder) {
        self.recorder = recorder;
    }

    /// The controller's trace recorder.
    pub fn trace_recorder(&self) -> &TraceRecorder {
        &self.recorder
    }

    /// Takes the trace recorder out (for trace assembly), leaving a
    /// disabled one behind.
    pub fn take_trace_recorder(&mut self) -> TraceRecorder {
        std::mem::replace(&mut self.recorder, TraceRecorder::disabled())
    }

    /// Installs a write observer (e.g. a wear model).
    pub fn set_observer<O: AccessObserver + 'static>(&mut self, obs: O) {
        self.observer = Some(Box::new(obs));
    }

    /// Installs a device fault model, enabling program-and-verify on data
    /// writes (see [`FaultInjector`]).
    pub fn set_fault_injector<F: FaultInjector + 'static>(&mut self, inj: F) {
        self.fault_injector = Some(Box::new(inj));
    }

    /// Statistics so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Distribution of demand-read latencies (tail-latency reporting).
    pub fn read_histogram(&self) -> &LatencyHistogram {
        &self.read_histogram
    }

    /// The active write policy.
    pub fn policy(&self) -> &dyn WritePolicy {
        self.policy.as_ref()
    }

    /// The memory image (for functional inspection).
    pub fn store(&self) -> &LineStore {
        &self.store
    }

    /// Address map in use.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// The wordline group of an address (helper for experiments).
    pub fn wlg_of(&self, addr: LineAddr) -> WlgId {
        self.map.wlg_of(addr)
    }

    /// Simulates a power failure and the scheme's recovery procedure
    /// (paper Section 7). Queued requests are dropped (they were volatile),
    /// and the policy's recovery runs against the persistent memory image.
    pub fn crash_recover(&mut self) {
        for c in &mut self.channels {
            c.rdq.clear();
            c.dep_overflow.clear();
            c.wrq.clear();
            c.write_overflow.clear();
            c.mode = Mode::Read;
        }
        self.write_deps.clear();
        while self.spill.pop().is_some() {}
        self.policy.crash_recover(&mut self.store);
    }

    fn fresh_id(&mut self) -> ReqId {
        self.next_id += 1;
        ReqId(self.next_id)
    }

    fn channel_of(&self, addr: LineAddr) -> usize {
        self.map.decode(addr).channel
    }

    fn bank_of(&self, addr: LineAddr) -> usize {
        self.map.decode(addr).flat_bank(self.map.geometry())
    }

    /// Whether the read queue of `addr`'s channel can take a demand read.
    pub fn can_enqueue_read(&self, addr: LineAddr) -> bool {
        self.channels[self.channel_of(addr)].rdq.len() < self.cfg.rdq_capacity
    }

    /// Enqueues a demand read; `None` when the queue is full (retry later).
    pub fn enqueue_read(&mut self, addr: LineAddr, now: Instant) -> Option<ReqId> {
        if !self.can_enqueue_read(addr) {
            return None;
        }
        let id = self.fresh_id();
        let ch = self.channel_of(addr);
        let bank = self.bank_of(addr);
        self.channels[ch].rdq.push_back(ReadEntry {
            id,
            bank,
            kind: RKind::Demand,
            enqueued_at: now,
            for_write: None,
        });
        self.wakes.schedule(now, CtrlWake::WorkArrived);
        Some(id)
    }

    /// Whether the write queue of `addr`'s channel can take a data write.
    pub fn can_enqueue_write(&self, addr: LineAddr) -> bool {
        self.channels[self.channel_of(addr)].wrq.len() < self.cfg.wrq_capacity
    }

    /// Enqueues a data write (an LLC write-back). Returns `false` when the
    /// write queue is full; re-writes to an already-queued line coalesce.
    pub fn enqueue_write(&mut self, addr: LineAddr, data: LineData, now: Instant) -> bool {
        let ch = self.channel_of(addr);
        if let Some(e) = self.channels[ch]
            .wrq
            .iter_mut()
            .find(|e| e.addr == addr && e.kind == WKind::Data)
        {
            e.data = data;
            return true;
        }
        if self.channels[ch].wrq.len() >= self.cfg.wrq_capacity {
            return false;
        }
        let id = self.fresh_id();
        let entry = WriteEntry {
            id,
            addr,
            bank: self.bank_of(addr),
            data,
            kind: WKind::Data,
            prepared: false,
            enqueued_at: now,
        };
        // Push first, then prepare: metadata write-backs evicted by the
        // prepare go through the bounded overflow path instead of pushing
        // the write queue past its capacity.
        let c = &mut self.channels[ch];
        let idx = c.wrq.len();
        c.wrq.push(entry);
        self.stats.wrq_peak = self.stats.wrq_peak.max(self.channels[ch].wrq.len());
        self.wakes.schedule(now, CtrlWake::WorkArrived);
        let mut e = self.channels[ch].wrq[idx].clone();
        self.prepare_entry(&mut e, now);
        self.channels[ch].wrq[idx] = e;
        true
    }

    /// Runs the policy's prepare step, wiring dependency reads and metadata
    /// write-backs into the queues.
    fn prepare_entry(&mut self, entry: &mut WriteEntry, now: Instant) {
        debug_assert_eq!(entry.kind, WKind::Data);
        let cache_before = if self.recorder.is_enabled() {
            self.policy.cache_counters()
        } else {
            None
        };
        let prep = self.policy.prepare(entry.addr, &self.store);
        self.trace_cache_delta(now, cache_before, prep.writebacks.len() as u32);
        for wb in &prep.writebacks {
            self.enqueue_metadata_writeback(*wb, now);
        }
        if prep.spilled {
            entry.prepared = false;
            if self.spill.push(entry.id.0) {
                self.stats.spill_peak = self.stats.spill_peak.max(self.spill.len());
            }
            return;
        }
        entry.prepared = true;
        if prep.reads.is_empty() {
            return;
        }
        self.write_deps.insert(
            entry.id,
            DepState {
                outstanding: prep.reads.len() as u32,
                ready_at: now,
            },
        );
        for r in prep.reads {
            let kind = match r.kind {
                ReadKind::Smb => {
                    self.stats.smb_reads += 1;
                    RKind::Smb
                }
                ReadKind::Metadata => {
                    self.stats.metadata_reads += 1;
                    RKind::Metadata
                }
            };
            let id = self.fresh_id();
            let rch = self.channel_of(r.addr);
            let rentry = ReadEntry {
                id,
                bank: self.bank_of(r.addr),
                kind,
                enqueued_at: now,
                for_write: Some(entry.id),
            };
            let c = &mut self.channels[rch];
            if c.rdq.len() < self.cfg.rdq_capacity {
                c.rdq.push_back(rentry);
            } else {
                c.dep_overflow.push_back(rentry);
            }
        }
    }

    /// Emits a [`TraceRecord::CacheAccess`] for the hit/miss delta a
    /// policy call produced, so trace totals reconcile exactly with the
    /// metadata cache's own counters. All-zero deltas are skipped.
    fn trace_cache_delta(&mut self, now: Instant, before: Option<(u64, u64)>, writebacks: u32) {
        let Some((h0, m0)) = before else {
            if writebacks > 0 && self.recorder.is_enabled() {
                self.recorder.record(
                    now,
                    TraceRecord::CacheAccess {
                        hits: 0,
                        misses: 0,
                        writebacks,
                    },
                );
            }
            return;
        };
        let (h1, m1) = self.policy.cache_counters().unwrap_or((h0, m0));
        let hits = (h1 - h0) as u32;
        let misses = (m1 - m0) as u32;
        if hits > 0 || misses > 0 || writebacks > 0 {
            self.recorder.record(
                now,
                TraceRecord::CacheAccess {
                    hits,
                    misses,
                    writebacks,
                },
            );
        }
    }

    fn enqueue_metadata_writeback(&mut self, addr: LineAddr, now: Instant) {
        let id = self.fresh_id();
        let entry = WriteEntry {
            id,
            addr,
            bank: self.bank_of(addr),
            data: self.store.read(addr),
            kind: WKind::MetadataWriteback,
            prepared: true,
            enqueued_at: now,
        };
        let ch = self.channel_of(addr);
        let c = &mut self.channels[ch];
        if c.wrq.len() < self.cfg.wrq_capacity {
            c.wrq.push(entry);
            self.stats.wrq_peak = self.stats.wrq_peak.max(c.wrq.len());
        } else {
            c.write_overflow.push_back(entry);
        }
        self.wakes.schedule(now, CtrlWake::WorkArrived);
    }

    /// Demand-read completions since the last call: `(id, completion)`.
    pub fn take_completed_reads(&mut self) -> Vec<(ReqId, Instant)> {
        std::mem::take(&mut self.completed_reads)
    }

    /// Earliest registered wake strictly after `now`, or `None` when every
    /// queue is empty. Wakes at or before `now` are discarded (their
    /// opportunity is served by the `process(now)` the caller is about to
    /// run, or already was).
    ///
    /// This replaces the old polled `next_event` scan over every bank and
    /// dependency: instead of recomputing candidate times from state, the
    /// controller registered each one the moment it became known.
    pub fn next_wake(&mut self, now: Instant) -> Option<Instant> {
        if !self.channels.iter().any(Channel::has_work) {
            return None;
        }
        self.wakes.next_after(now)
    }

    /// Drains every registered wake, in firing order, for an external
    /// event pump to absorb into its own queue. Unlike
    /// [`MemoryController::next_wake`] this does not filter stale or
    /// duplicate entries — the pump coalesces same-instant dispatches.
    pub fn take_wakes(&mut self) -> Vec<(Instant, CtrlWake)> {
        self.wakes.drain()
    }

    /// Whether every queue is empty.
    pub fn is_idle(&self) -> bool {
        !self.channels.iter().any(Channel::has_work)
    }

    /// Issues every operation that can start at `now`.
    pub fn process(&mut self, now: Instant) {
        for ch in 0..self.channels.len() {
            self.refill_from_overflow(ch);
            self.update_mode(ch, now);
            loop {
                let issued = match self.channels[ch].mode {
                    Mode::Read => {
                        self.issue_read(ch, now, true) || self.issue_write_opportunistic(ch, now)
                    }
                    Mode::WriteDrain => {
                        // Dependency reads keep flowing during a drain; and
                        // if dependency reads are stuck in overflow behind a
                        // read queue full of demand reads, let one demand
                        // read through — otherwise drain (blocked on deps),
                        // rdq (blocked on drain) and deps (blocked on rdq)
                        // deadlock in a cycle.
                        self.issue_write(ch, now)
                            || self.issue_read(ch, now, false)
                            || (!self.channels[ch].dep_overflow.is_empty()
                                && self.issue_read(ch, now, true))
                    }
                };
                if !issued {
                    break;
                }
                self.refill_from_overflow(ch);
                self.update_mode(ch, now);
            }
        }
    }

    fn refill_from_overflow(&mut self, ch: usize) {
        let cfg = self.cfg;
        let c = &mut self.channels[ch];
        while c.rdq.len() < cfg.rdq_capacity {
            match c.dep_overflow.pop_front() {
                Some(e) => c.rdq.push_back(e),
                None => break,
            }
        }
        while c.wrq.len() < cfg.wrq_capacity {
            match c.write_overflow.pop_front() {
                Some(e) => c.wrq.push(e),
                None => break,
            }
        }
    }

    /// In read mode, service writes only when no read is waiting on this
    /// channel, and never on more than a few banks at once: a started write
    /// occupies its bank for up to `tRCD + tWR + tBURST`, so flooding every
    /// bank with opportunistic writes would ambush the next read burst.
    fn issue_write_opportunistic(&mut self, ch: usize, now: Instant) -> bool {
        const MAX_OPPORTUNISTIC_BANKS: usize = 4;
        if !self.channels[ch].rdq.is_empty() || self.channels[ch].wrq.is_empty() {
            return false;
        }
        let g = self.map.geometry();
        let banks_per_channel = g.ranks_per_channel * g.banks_per_rank;
        let first = ch * banks_per_channel;
        let busy = self.banks[first..first + banks_per_channel]
            .iter()
            .filter(|&&b| b > now)
            .count();
        if busy >= MAX_OPPORTUNISTIC_BANKS {
            return false;
        }
        self.issue_write(ch, now)
    }

    fn update_mode(&mut self, ch: usize, now: Instant) {
        let len = self.channels[ch].wrq.len();
        match self.channels[ch].mode {
            Mode::Read => {
                if len >= self.cfg.drain_high {
                    self.channels[ch].mode = Mode::WriteDrain;
                    self.stats.drain_switches += 1;
                    self.wakes.schedule(now, CtrlWake::ModeSwitch);
                }
            }
            Mode::WriteDrain => {
                // Exit at the low watermark, or when no queued write can
                // ever become dispatchable without a spill retry.
                let any_viable = self.channels[ch].wrq.iter().any(|w| w.prepared);
                if len <= self.cfg.drain_low || !any_viable {
                    self.channels[ch].mode = Mode::Read;
                    self.wakes.schedule(now, CtrlWake::ModeSwitch);
                    self.retry_spilled(now);
                }
            }
        }
    }

    /// Re-prepares every unprepared (spilled) write, oldest first — invoked
    /// on write→read mode switches per the paper.
    fn retry_spilled(&mut self, now: Instant) {
        while self.spill.pop().is_some() {}
        let mut targets: Vec<(usize, usize, ReqId)> = Vec::new();
        for (ci, c) in self.channels.iter().enumerate() {
            for (wi, w) in c.wrq.iter().enumerate() {
                if !w.prepared && w.kind == WKind::Data {
                    targets.push((ci, wi, w.id));
                }
            }
        }
        targets.sort_by_key(|&(_, _, id)| id);
        if !targets.is_empty() {
            // Re-prepared writes (and any dependency reads they wire in)
            // become actionable at `now`.
            self.wakes.schedule(now, CtrlWake::WorkArrived);
        }
        for (ci, wi, id) in targets {
            // Re-locate defensively in case indices shifted (they cannot —
            // prepare never removes write entries — but stay robust).
            if self.channels[ci].wrq.get(wi).map(|w| w.id) != Some(id) {
                continue;
            }
            let mut entry = self.channels[ci].wrq[wi].clone();
            self.prepare_entry(&mut entry, now);
            self.channels[ci].wrq[wi] = entry;
        }
    }

    fn issue_read(&mut self, ch: usize, now: Instant, demand_allowed: bool) -> bool {
        let timing = self.cfg.timing;
        let lat = timing.read_latency();
        let idx = {
            let c = &self.channels[ch];
            let banks = &self.banks;
            c.rdq
                .iter()
                .position(|r| (demand_allowed || r.kind != RKind::Demand) && banks[r.bank] <= now)
        };
        let Some(idx) = idx else { return false };
        // lint: allow(panic-policy) — invariant: idx was just produced by position() over this same queue
        let entry = self.channels[ch].rdq.remove(idx).expect("index valid");
        let bank = entry.bank;
        let nominal_burst = Instant::from_ps((now + lat).as_ps() - timing.t_burst.as_ps());
        let burst_start = self.channels[ch]
            .bus
            .reserve(nominal_burst, timing.t_burst, now);
        let completion = burst_start + timing.t_burst;
        self.banks[bank] = completion;
        self.wakes.schedule(completion, CtrlWake::BankFree);
        if self.recorder.is_enabled() {
            let class = match entry.kind {
                RKind::Demand => ReadClass::Demand,
                RKind::Smb => ReadClass::Smb,
                RKind::Metadata => ReadClass::Metadata,
            };
            self.recorder.record(
                completion,
                TraceRecord::ReadComplete {
                    class,
                    latency: completion.duration_since(entry.enqueued_at),
                },
            );
        }
        match entry.kind {
            RKind::Demand => {
                self.stats.demand_reads += 1;
                let latency = completion.duration_since(entry.enqueued_at);
                self.stats.demand_read_latency += latency;
                self.read_histogram.record(latency);
                self.completed_reads.push((entry.id, completion));
            }
            RKind::Smb | RKind::Metadata => {
                if let Some(wid) = entry.for_write {
                    if let Some(dep) = self.write_deps.get_mut(&wid) {
                        dep.outstanding -= 1;
                        dep.ready_at = dep.ready_at.max(completion);
                        if dep.outstanding == 0 {
                            let at = dep.ready_at;
                            self.wakes.schedule(at, CtrlWake::DepReady);
                        }
                    }
                }
            }
        }
        true
    }

    fn issue_write(&mut self, ch: usize, now: Instant) -> bool {
        let timing = self.cfg.timing;
        let idx = {
            let c = &self.channels[ch];
            let banks = &self.banks;
            let deps = &self.write_deps;
            c.wrq.iter().position(|w| {
                if !w.prepared {
                    return false;
                }
                if let Some(dep) = deps.get(&w.id) {
                    if dep.outstanding > 0 || dep.ready_at > now {
                        return false;
                    }
                }
                banks[w.bank] <= now
            })
        };
        let Some(idx) = idx else { return false };
        let entry = self.channels[ch].wrq.remove(idx);
        self.write_deps.remove(&entry.id);
        let bank = entry.bank;
        let (t_wr, bits_set, bits_reset, cw_lrs) = match entry.kind {
            WKind::Data => {
                let cache_before = if self.recorder.is_enabled() {
                    self.policy.cache_counters()
                } else {
                    None
                };
                let r = self.policy.service(entry.addr, entry.data, &mut self.store);
                self.trace_cache_delta(now, cache_before, 0);
                (r.t_wr, r.bits_set, r.bits_reset, r.cw_lrs)
            }
            WKind::MetadataWriteback => {
                let t = self.policy.metadata_write_latency(entry.addr);
                let (s, r) = self.policy.metadata_writeback_bits(entry.addr, &self.store);
                (t, s, r, None)
            }
        };
        let mut lat = timing.write_latency(t_wr);
        let mut write_retry_time = Picos::ZERO;
        // Program-and-verify: each failed verify triggers exactly one
        // escalated retry pulse (verify read + longer RESET), extending
        // this write's bank occupancy so read blocking is modeled
        // honestly. A RetryPulse wake marks the start of every retry.
        if entry.kind == WKind::Data {
            if let Some(inj) = &mut self.fault_injector {
                let mut residual = inj.program(entry.addr, &mut self.store, 0, t_wr);
                let max_retries = inj.max_retries();
                let mut attempt = 0u32;
                let mut retry_time = Picos::ZERO;
                while residual > 0 && attempt < max_retries {
                    attempt += 1;
                    self.stats.failed_verifies += 1;
                    self.stats.retries_issued += 1;
                    // The verify read precedes the retry pulse.
                    let pulse = timing.write_latency(inj.retry_t_wr_at(entry.addr, t_wr, attempt));
                    let pulse_start = now + lat + retry_time + timing.read_latency();
                    self.wakes.schedule(pulse_start, CtrlWake::RetryPulse);
                    self.recorder.record(
                        pulse_start,
                        TraceRecord::VerifyRetry {
                            attempt,
                            failed_bits: residual,
                            pulse,
                        },
                    );
                    retry_time += timing.read_latency() + pulse;
                    residual = inj.program(entry.addr, &mut self.store, attempt, t_wr);
                }
                if residual > 0 {
                    // Budget exhausted with bits still failing: hand the
                    // residue to ECC / retire-and-remap. No verify is
                    // charged after the final pulse — nothing could act
                    // on it.
                    let resolved_at = now + lat + retry_time;
                    let resolution = inj.resolve(entry.addr, residual, &mut self.store);
                    if resolution.corrected {
                        self.stats.ecc_corrected_bits += residual as u64;
                        self.recorder
                            .record(resolved_at, TraceRecord::EccCorrection { bits: residual });
                    } else {
                        self.stats.uncorrectable_writes += 1;
                        self.recorder
                            .record(resolved_at, TraceRecord::Uncorrectable);
                    }
                    // Detail records only exist in non-default modes, so
                    // default-mode digests stay byte-identical.
                    if let Some(tier) = resolution.tier {
                        self.recorder.record(
                            resolved_at,
                            TraceRecord::TierEcc {
                                tier,
                                bits: residual,
                            },
                        );
                    }
                    if let Some((page, frame)) = resolution.remapped {
                        self.recorder
                            .record(resolved_at, TraceRecord::PadRemap { page, frame });
                    }
                }
                self.stats.retry_time += retry_time;
                write_retry_time = retry_time;
                lat += retry_time;
            }
        }
        let nominal_burst = Instant::from_ps((now + lat).as_ps() - timing.t_burst.as_ps());
        let burst_start = self.channels[ch]
            .bus
            .reserve(nominal_burst, timing.t_burst, now);
        let completion = burst_start + timing.t_burst;
        self.banks[bank] = completion;
        self.wakes.schedule(completion, CtrlWake::BankFree);
        // The write-queue slot frees the moment the write dispatches, so
        // writers rejected on a full queue can retry at `now`.
        self.wakes.schedule(now, CtrlWake::QueueSlotFree);
        if self.recorder.is_enabled() {
            let (wl, bl) = self.map.write_location(entry.addr);
            let (kind, t_worst, t_loc) = match entry.kind {
                WKind::Data => {
                    let bounds = self.policy.pulse_bounds(entry.addr);
                    let (w, l) = bounds
                        .map(|b| (b.worst, b.location))
                        .unwrap_or((t_wr, t_wr));
                    (PulseKind::Data, w, l)
                }
                WKind::MetadataWriteback => (PulseKind::Metadata, t_wr, t_wr),
            };
            self.recorder.record(
                now,
                TraceRecord::ResetPulse {
                    kind,
                    wl: wl as u32,
                    bl: bl as u32,
                    c_lrs: cw_lrs.map(u32::from).unwrap_or(C_LRS_UNTRACKED),
                    t_wr,
                    queue_wait: now.duration_since(entry.enqueued_at),
                    retry_time: write_retry_time,
                    service: completion.duration_since(now),
                    t_worst,
                    t_loc,
                },
            );
        }
        match entry.kind {
            WKind::Data => {
                self.stats.data_writes += 1;
                self.stats.write_service_time += completion.duration_since(now);
                self.stats.t_wr_data += t_wr;
            }
            WKind::MetadataWriteback => {
                self.stats.metadata_writes += 1;
                self.stats.t_wr_metadata += t_wr;
            }
        }
        self.stats.bits_set += bits_set as u64;
        self.stats.bits_reset += bits_reset as u64;
        if let Some(obs) = &mut self.observer {
            obs.as_observer().on_write(entry.addr, bits_set, bits_reset);
        }
        true
    }

    /// Drains every queue and returns the final completion time.
    ///
    /// Dirty metadata still resident in the LRS-metadata cache is *not*
    /// force-flushed: the paper measures steady state, where counters live
    /// in the cache indefinitely (power-loss durability is the Section 7
    /// crash-consistency discussion, exercised via
    /// [`WritePolicy::flush`]/lazy correction, not part of the
    /// measurement). Use [`MemoryController::flush_metadata`] to persist
    /// explicitly.
    ///
    /// # Panics
    ///
    /// Panics if the controller wedges (a scheduling bug) instead of
    /// silently reporting a truncated simulation.
    pub fn finish(&mut self, now: Instant) -> Instant {
        let now = self.drain_all(now);
        let busiest = self.banks.iter().copied().fold(Instant::ZERO, Instant::max);
        busiest.max(now)
    }

    /// Explicitly writes back all dirty metadata (an eADR-style flush) and
    /// drains, returning the completion time.
    pub fn flush_metadata(&mut self, mut now: Instant) -> Instant {
        loop {
            let dirty = self.policy.flush();
            if dirty.is_empty() {
                break;
            }
            for addr in dirty {
                self.enqueue_metadata_writeback(addr, now);
            }
            now = self.drain_all(now);
        }
        now
    }

    /// Event-driven drain: force write-drain mode, process, and hop from
    /// registered wake to registered wake until every queue empties.
    ///
    /// Invariant: after `process(now)`, a non-idle controller either has a
    /// registered future wake (an in-flight operation's bank frees, making
    /// the next head-of-queue entry issuable), or its only remaining work
    /// is spilled writes whose metadata could not be pinned — which
    /// `retry_spilled` re-prepares once their conflicting pins released.
    /// A second consecutive stall at the same instant means the retry
    /// changed nothing and no event can ever arrive: a scheduling bug,
    /// reported by panicking rather than silently truncating the
    /// simulation. (This replaces the old `stall_guard < 4` counter, which
    /// tolerated — and hid — repeated no-progress retries.)
    fn drain_all(&mut self, mut now: Instant) -> Instant {
        loop {
            for c in &mut self.channels {
                if !c.wrq.is_empty() || !c.write_overflow.is_empty() {
                    c.mode = Mode::WriteDrain;
                }
            }
            self.process(now);
            if self.is_idle() {
                break;
            }
            match self.next_wake(now) {
                Some(t) => now = t,
                None => {
                    self.retry_spilled(now);
                    self.process(now);
                    assert!(
                        self.is_idle() || self.next_wake(now).is_some(),
                        "controller wedged during finish: work queued at {now} \
                         with no future wake and nothing re-preparable"
                    );
                }
            }
        }
        now
    }
}

#[cfg(test)]
mod bus_tests {
    use super::*;

    fn ps(v: u64) -> Instant {
        Instant::from_ps(v)
    }

    #[test]
    fn reserves_nominal_slot_when_free() {
        let mut bus = BusSchedule::default();
        let start = bus.reserve(ps(100), Picos::from_ps(5), ps(0));
        assert_eq!(start, ps(100));
    }

    #[test]
    fn earlier_burst_fits_before_a_later_reservation() {
        let mut bus = BusSchedule::default();
        // A long-write burst far in the future.
        assert_eq!(bus.reserve(ps(700), Picos::from_ps(5), ps(0)), ps(700));
        // A read's burst at t=40 must NOT wait for it.
        assert_eq!(bus.reserve(ps(40), Picos::from_ps(5), ps(0)), ps(40));
    }

    #[test]
    fn overlapping_requests_serialize() {
        let mut bus = BusSchedule::default();
        assert_eq!(bus.reserve(ps(100), Picos::from_ps(5), ps(0)), ps(100));
        assert_eq!(bus.reserve(ps(102), Picos::from_ps(5), ps(0)), ps(105));
        assert_eq!(bus.reserve(ps(104), Picos::from_ps(5), ps(0)), ps(110));
    }

    #[test]
    fn gap_between_reservations_is_used() {
        let mut bus = BusSchedule::default();
        bus.reserve(ps(100), Picos::from_ps(5), ps(0));
        bus.reserve(ps(120), Picos::from_ps(5), ps(0));
        // A 5-ps burst wanted at 106 fits in the 105..120 gap.
        assert_eq!(bus.reserve(ps(106), Picos::from_ps(5), ps(0)), ps(106));
        // But a burst wanted at 117 collides with 120..125 and goes after.
        assert_eq!(bus.reserve(ps(117), Picos::from_ps(5), ps(0)), ps(125));
    }

    #[test]
    fn past_reservations_are_pruned() {
        let mut bus = BusSchedule::default();
        for i in 0..100u64 {
            bus.reserve(ps(i * 10), Picos::from_ps(5), ps(0));
        }
        // Advancing `now` prunes everything that ended.
        bus.reserve(ps(5000), Picos::from_ps(5), ps(2000));
        assert!(bus.slots.len() < 100, "prune must discard finished bursts");
    }

    #[test]
    fn reservations_never_overlap() {
        let mut bus = BusSchedule::default();
        let mut x = 9u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let nominal = x % 2_000;
            bus.reserve(ps(nominal), Picos::from_ps(5), ps(0));
        }
        let mut prev_end = 0;
        for &(s, e) in &bus.slots {
            assert!(s >= prev_end, "slots overlap: {s} < {prev_end}");
            assert!(e > s);
            prev_end = e;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{standard_tables, FixedWorstPolicy, LadderPolicy};
    use ladder_core::LadderVariant;
    use ladder_reram::Geometry;
    use ladder_xbar::{TableConfig, TimingTable};

    fn table() -> TimingTable {
        TimingTable::generate(&TableConfig::ladder_default()).expect("table")
    }

    fn baseline_mc() -> MemoryController {
        let map = AddressMap::new(Geometry::default());
        let t = table();
        MemoryController::new(
            MemCtrlConfig::default(),
            map,
            Box::new(FixedWorstPolicy::new(&t)),
        )
    }

    fn ladder_mc(variant: LadderVariant) -> MemoryController {
        let map = AddressMap::new(Geometry::default());
        let ladder_table = standard_tables(&TableConfig::ladder_default()).ladder;
        let policy = LadderPolicy::for_variant(variant, ladder_table, map.clone());
        MemoryController::new(MemCtrlConfig::default(), map, Box::new(policy))
    }

    #[test]
    fn single_read_completes_with_device_latency() {
        let mut mc = baseline_mc();
        let t0 = Instant::ZERO;
        let id = mc.enqueue_read(LineAddr::new(1000), t0).expect("queued");
        mc.process(t0);
        let done = mc.take_completed_reads();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, id);
        let lat = done[0].1.duration_since(t0);
        assert_eq!(lat, DeviceTiming::default().read_latency());
    }

    #[test]
    fn write_coalescing_merges_same_address() {
        let mut mc = baseline_mc();
        let t0 = Instant::ZERO;
        assert!(mc.enqueue_write(LineAddr::new(5), [1; 64], t0));
        assert!(mc.enqueue_write(LineAddr::new(5), [2; 64], t0));
        mc.finish(t0);
        assert_eq!(mc.stats().data_writes, 1);
        assert_eq!(mc.store().read(LineAddr::new(5))[0], 2);
    }

    #[test]
    fn drain_blocks_demand_reads() {
        let mut mc = baseline_mc();
        let mut now = Instant::ZERO;
        // Fill one channel's write queue past the high watermark. Channel
        // of a page = page % 2, so pages 0, 2, 4, … share channel 0.
        let mut queued = 0u64;
        let mut page = 0u64;
        while queued < 55 {
            let addr = LineAddr::new(page * 128 * 64 / 64 * 64); // page*2 pages → channel 0
            let a = LineAddr::new((page * 2) * 64);
            let _ = addr;
            if mc.enqueue_write(a, [0xFF; 64], now) {
                queued += 1;
            }
            page += 1;
        }
        mc.process(now);
        // A demand read on channel 0 now sits behind the drain.
        let rid = mc.enqueue_read(LineAddr::new(0), now).expect("queued");
        mc.process(now);
        assert!(
            mc.take_completed_reads().is_empty(),
            "read must wait out the drain"
        );
        // Let the drain run its course.
        for _ in 0..100000 {
            match mc.next_wake(now) {
                Some(t) => now = t,
                None => break,
            }
            mc.process(now);
            let done = mc.take_completed_reads();
            if done.iter().any(|&(id, _)| id == rid) {
                // The read waited at least one worst-case write.
                assert!(now.duration_since(Instant::ZERO) >= Picos::from_ns(658.0));
                return;
            }
        }
        panic!("demand read never completed");
    }

    #[test]
    fn ladder_write_waits_for_metadata_fill() {
        let mut mc = ladder_mc(LadderVariant::Est);
        let t0 = Instant::ZERO;
        let first_data = {
            // Probe the policy for its layout through a temporary engine.
            let map = AddressMap::new(Geometry::default());
            let layout = ladder_core::MetadataLayout::new(
                map.geometry(),
                ladder_core::MetadataFormat::Partial,
            );
            layout.first_data_page() * 64
        };
        let addr = LineAddr::new(first_data);
        assert!(mc.enqueue_write(addr, [0x55; 64], t0));
        let end = mc.finish(t0);
        assert_eq!(mc.stats().data_writes, 1);
        assert_eq!(mc.stats().metadata_reads, 1);
        // Steady-state finish leaves the dirty counter cached; an explicit
        // eADR-style flush persists it.
        assert_eq!(mc.stats().metadata_writes, 0);
        let end = mc.flush_metadata(end);
        let stats = mc.stats();
        assert_eq!(stats.metadata_writes, 1);
        // The write could not start before its metadata fill returned.
        assert!(end.duration_since(t0) >= DeviceTiming::default().read_latency());
    }

    #[test]
    fn basic_issues_smb_reads_per_write() {
        let mut mc = ladder_mc(LadderVariant::Basic);
        let t0 = Instant::ZERO;
        let first_data = {
            let map = AddressMap::new(Geometry::default());
            ladder_core::MetadataLayout::new(map.geometry(), ladder_core::MetadataFormat::Exact)
                .first_data_page()
                * 64
        };
        for i in 0..10u64 {
            assert!(mc.enqueue_write(LineAddr::new(first_data + i), [i as u8; 64], t0));
        }
        mc.finish(t0);
        let stats = mc.stats();
        assert_eq!(stats.data_writes, 10);
        assert_eq!(stats.smb_reads, 10);
        // One metadata fill (two lines) serves the whole page.
        assert_eq!(stats.metadata_reads, 2);
    }

    #[test]
    fn stats_additional_fractions() {
        let mut mc = ladder_mc(LadderVariant::Hybrid);
        let mut now = Instant::ZERO;
        let first_data = {
            let map = AddressMap::new(Geometry::default());
            ladder_core::MetadataLayout::new(
                map.geometry(),
                ladder_core::MetadataFormat::MultiGranularity {
                    low_precision_rows: 128,
                },
            )
            .first_data_page()
                * 64
        };
        // Interleave reads and writes across several pages.
        for i in 0..200u64 {
            let addr = LineAddr::new(first_data + (i * 17) % (8 * 64));
            if i % 3 == 0 {
                while mc.enqueue_read(addr, now).is_none() {
                    now = mc.next_wake(now).expect("progress");
                    mc.process(now);
                }
            } else {
                while !mc.enqueue_write(addr, [(i % 251) as u8; 64], now) {
                    now = mc.next_wake(now).expect("progress");
                    mc.process(now);
                }
            }
            mc.process(now);
        }
        mc.finish(now);
        let s = mc.stats();
        assert!(s.demand_reads > 0 && s.data_writes > 0);
        // Hybrid keeps metadata traffic small relative to demand traffic.
        assert!(s.additional_read_fraction() < 0.5);
        assert!(s.additional_write_fraction() < 0.5);
        assert!(mc.policy().cache_hit_ratio().expect("ladder has a cache") > 0.5);
    }

    #[test]
    fn observer_sees_every_write() {
        struct CountObs(std::sync::Arc<std::sync::atomic::AtomicU64>);
        impl AccessObserver for CountObs {
            fn on_write(&mut self, _addr: LineAddr, _s: u32, _r: u32) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut mc = baseline_mc();
        mc.set_observer(CountObs(counter.clone()));
        let t0 = Instant::ZERO;
        for i in 0..5u64 {
            assert!(mc.enqueue_write(LineAddr::new(i * 64), [3; 64], t0));
        }
        mc.finish(t0);
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 5);
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;
    use crate::policy::{standard_tables, LadderPolicy};
    use ladder_core::{LadderConfig, LadderVariant, MetadataCacheConfig};
    use ladder_reram::Geometry;
    use ladder_xbar::TableConfig;

    /// Builds an Est controller with a deliberately tiny metadata cache so
    /// conflict sets fill up with pinned (shared) lines.
    fn tiny_cache_mc() -> MemoryController {
        let map = AddressMap::new(Geometry::default());
        let ladder_table = standard_tables(&TableConfig::ladder_default()).ladder;
        let mut cfg = LadderConfig::for_variant(LadderVariant::Est);
        cfg.cache = MetadataCacheConfig {
            capacity_bytes: 4 * 64, // 4 lines, 4 ways → ONE set
            ways: 4,
            access_cycles: 2,
            spill_entries: 4,
        };
        let policy = LadderPolicy::new(cfg, ladder_table, map.clone());
        MemoryController::new(MemCtrlConfig::default(), map, Box::new(policy))
    }

    #[test]
    fn spill_path_eventually_services_every_write() {
        let mut mc = tiny_cache_mc();
        let mut now = Instant::ZERO;
        // Writes to many distinct pages: each pins a different metadata
        // line in the single cache set, forcing spills.
        let first_data = 40_000u64;
        let mut accepted = 0u64;
        for i in 0..200u64 {
            let addr = LineAddr::new((first_data + i * 7) * 64 + i % 64);
            while !mc.enqueue_write(addr, [(i % 251) as u8; 64], now) {
                now = mc.next_wake(now).expect("progress");
                mc.process(now);
            }
            accepted += 1;
            mc.process(now);
        }
        mc.finish(now);
        assert_eq!(mc.stats().data_writes, accepted);
        assert!(mc.is_idle());
    }

    #[test]
    fn dependency_read_overflow_drains() {
        let mut mc = tiny_cache_mc();
        let mut now = Instant::ZERO;
        // Saturate the read queue with demand reads, then enqueue writes
        // whose metadata fills must take the dep-overflow path.
        let first_data = 50_000u64;
        for i in 0..64u64 {
            let _ = mc.enqueue_read(LineAddr::new((first_data + i) * 64), now);
        }
        for i in 0..40u64 {
            let addr = LineAddr::new((first_data + 100 + i * 3) * 64);
            while !mc.enqueue_write(addr, [7; 64], now) {
                now = mc.next_wake(now).expect("progress");
                mc.process(now);
            }
        }
        let end = mc.finish(now);
        assert!(mc.is_idle());
        assert!(end > Instant::ZERO);
        assert_eq!(mc.stats().data_writes, 40);
    }

    #[test]
    fn interleaved_traffic_conserves_requests() {
        let mut mc = tiny_cache_mc();
        let mut now = Instant::ZERO;
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut x = 42u64;
        for _ in 0..3000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = LineAddr::new(40_000 * 64 + x % 100_000);
            if x.is_multiple_of(5) {
                if mc.enqueue_write(addr, [(x % 256) as u8; 64], now) {
                    writes += 1;
                }
            } else if mc.enqueue_read(addr, now).is_some() {
                reads += 1;
            }
            mc.process(now);
            if x.is_multiple_of(7) {
                if let Some(t) = mc.next_wake(now) {
                    now = t;
                    mc.process(now);
                }
            }
        }
        mc.finish(now);
        let s = mc.stats();
        assert_eq!(s.demand_reads, reads);
        // Coalescing can merge same-address writes; serviced ≤ accepted.
        assert!(s.data_writes <= writes);
        assert!(s.data_writes > 0);
    }
}
