//! Cycle-level ReRAM memory controller with pluggable write-latency
//! policies.
//!
//! The controller models what the paper's gem5 configuration models: a
//! per-channel 32-entry read queue and 64-entry write queue, bank and bus
//! occupancy, and write-drain scheduling with an 85 % switching threshold.
//! The write-latency *scheme* — baseline, Split-reset, BLP, LADDER,
//! Oracle — plugs in through the [`WritePolicy`] trait, so every scheme
//! runs under identical queueing dynamics, as in the paper's evaluation.
//!
//! # Examples
//!
//! ```
//! use ladder_memctrl::{FixedWorstPolicy, MemCtrlConfig, MemoryController};
//! use ladder_reram::{AddressMap, Geometry, Instant, LineAddr};
//! use ladder_xbar::{TableConfig, TimingTable};
//!
//! let map = AddressMap::new(Geometry::default());
//! let table = TimingTable::generate(&TableConfig::ladder_default())?;
//! let policy = Box::new(FixedWorstPolicy::new(&table));
//! let mut mc = MemoryController::new(MemCtrlConfig::default(), map, policy);
//!
//! let t0 = Instant::ZERO;
//! mc.enqueue_write(LineAddr::new(4096), [0xAB; 64], t0);
//! let end = mc.finish(t0);
//! assert!(end > t0);
//! assert_eq!(mc.stats().data_writes, 1);
//! # Ok::<(), ladder_xbar::MnaError>(())
//! ```

mod controller;
mod policy;

pub use controller::{
    AccessObserver, CtrlWake, FaultInjector, MemCtrlConfig, MemStats, MemoryController, ReqId,
    Resolution,
};
/// The latency histogram now lives in `ladder-trace` (re-exported here
/// for compatibility with existing callers).
pub use ladder_trace::LatencyHistogram;
pub use policy::{
    standard_tables, BlpPolicy, CwTrace, FixedWorstPolicy, LadderPolicy, LocationAwarePolicy,
    OraclePolicy, PrepResult, PulseBounds, ServiceResult, SplitResetPolicy, Tables, WritePolicy,
};
