//! The fixture corpus is the analyzer's regression suite: every bad
//! snippet fires exactly its one declared finding, every clean snippet
//! fires none. A rule change that widens or narrows coverage shows up here
//! before it ever gates the real workspace.

use std::path::{Path, PathBuf};

use ladder_lint::run_fixtures;

fn fixtures_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(kind)
}

#[test]
fn every_bad_fixture_fires_exactly_its_expected_finding() {
    let reports = run_fixtures(&fixtures_dir("bad")).expect("read bad fixtures");
    assert!(
        reports.len() >= 13,
        "bad corpus shrank to {} fixtures",
        reports.len()
    );
    for r in &reports {
        let expected = r.expected.as_deref().unwrap_or_else(|| {
            panic!(
                "bad fixture {} is missing its `// expect:` header",
                r.fixture
            )
        });
        assert!(
            r.conforms(),
            "{} (as {}): expected exactly one `{}` finding, got {:?}",
            r.fixture,
            r.virtual_path,
            expected,
            r.findings
        );
    }
}

#[test]
fn bad_corpus_covers_every_rule() {
    let reports = run_fixtures(&fixtures_dir("bad")).expect("read bad fixtures");
    let fired: Vec<&str> = reports
        .iter()
        .flat_map(|r| &r.findings)
        .map(|f| f.rule)
        .collect();
    for rule in ladder_lint::RULES {
        assert!(
            fired.contains(&rule.name),
            "no bad fixture exercises rule `{}`",
            rule.name
        );
    }
    // The internal pragma-error rule is exercised too.
    assert!(fired.contains(&"pragma"));
}

#[test]
fn clean_corpus_fires_nothing() {
    let reports = run_fixtures(&fixtures_dir("clean")).expect("read clean fixtures");
    assert!(
        reports.len() >= 9,
        "clean corpus shrank to {} fixtures",
        reports.len()
    );
    for r in &reports {
        assert!(
            r.expected.is_none(),
            "clean fixture {} declares an `// expect:` header",
            r.fixture
        );
        assert!(
            r.findings.is_empty(),
            "{} (as {}): expected no findings, got {:?}",
            r.fixture,
            r.virtual_path,
            r.findings
        );
    }
}
