//! The fixture corpus is the analyzer's regression suite: every bad
//! snippet fires exactly its one declared finding (at its declared
//! position, when pinned), every clean snippet fires none. A rule change
//! that widens or narrows coverage shows up here before it ever gates the
//! real workspace.

use std::path::{Path, PathBuf};

use ladder_lint::{run_fixture_source, run_fixtures};

fn fixtures_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(kind)
}

#[test]
fn every_bad_fixture_fires_exactly_its_expected_finding() {
    let reports = run_fixtures(&fixtures_dir("bad")).expect("read bad fixtures");
    assert!(
        reports.len() >= 18,
        "bad corpus shrank to {} fixtures",
        reports.len()
    );
    for r in &reports {
        let expected = r.expected.as_ref().unwrap_or_else(|| {
            panic!(
                "bad fixture {} is missing its `// expect:` header",
                r.fixture
            )
        });
        assert!(
            r.conforms(),
            "{} (as {}): expected exactly one `{}` finding at {:?}, got {:?}",
            r.fixture,
            r.virtual_path,
            expected.rule,
            expected.pos,
            r.findings
        );
    }
}

#[test]
fn bad_corpus_covers_every_rule() {
    let reports = run_fixtures(&fixtures_dir("bad")).expect("read bad fixtures");
    let fired: Vec<&str> = reports
        .iter()
        .flat_map(|r| &r.findings)
        .map(|f| f.rule)
        .collect();
    for rule in ladder_lint::RULES {
        assert!(
            fired.contains(&rule.name),
            "no bad fixture exercises rule `{}`",
            rule.name
        );
    }
    // The internal pragma-error rule is exercised too.
    assert!(fired.contains(&"pragma"));
}

#[test]
fn clean_corpus_fires_nothing() {
    let reports = run_fixtures(&fixtures_dir("clean")).expect("read clean fixtures");
    assert!(
        reports.len() >= 14,
        "clean corpus shrank to {} fixtures",
        reports.len()
    );
    for r in &reports {
        assert!(
            r.expected.is_none(),
            "clean fixture {} declares an `// expect:` header",
            r.fixture
        );
        assert!(
            r.findings.is_empty(),
            "{} (as {}): expected no findings, got {:?}",
            r.fixture,
            r.virtual_path,
            r.findings
        );
    }
}

/// The fast-ref-twin rule must actually depend on the equivalence-test
/// reference: take the clean twin fixture, delete the line in its
/// equivalence-test section that mentions the reference kernel, and the
/// corpus self-check has to start failing with a fast-ref-twin finding.
#[test]
fn deleting_the_equivalence_reference_breaks_the_clean_twin_fixture() {
    let path = fixtures_dir("clean").join("fast_ref_twin.rs");
    let source = std::fs::read_to_string(&path).expect("read clean fast_ref_twin fixture");
    assert!(run_fixture_source("clean/fast_ref_twin.rs", &source).conforms());

    let mutated: String = source
        .lines()
        .filter(|l| !l.contains("reference::"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_ne!(mutated, source, "mutation removed nothing");
    let report = run_fixture_source("clean/fast_ref_twin.rs", &mutated);
    assert!(
        !report.conforms(),
        "fixture still conforms with the equivalence reference deleted"
    );
    assert!(
        report.findings.iter().any(|f| f.rule == "fast-ref-twin"),
        "expected a fast-ref-twin finding, got {:?}",
        report.findings
    );
}
