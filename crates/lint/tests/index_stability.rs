//! The symbol index is pass 1 of the analyzer: every semantic rule reads
//! it, so its contents must not depend on the order the walker happened
//! to visit files in. The property: for any permutation of the corpus,
//! `SymbolIndex::from_units` produces the identical index.

use ladder_lint::index::SymbolIndex;
use ladder_lint::SourceUnit;
use proptest::prelude::*;

fn unit(path: &str, src: &str) -> SourceUnit {
    SourceUnit {
        rel_path: path.to_string(),
        source: src.to_string(),
    }
}

/// A small but representative corpus: modules, impls, reference twins,
/// counter structs, enums, and a test file.
fn corpus() -> Vec<SourceUnit> {
    vec![
        unit(
            "crates/a/src/lib.rs",
            "pub fn ones(x: u64) -> u32 { x.count_ones() }\n\
             pub mod reference {\n    pub fn ones(x: u64) -> u32 { x.count_ones() }\n}\n",
        ),
        unit(
            "crates/a/tests/kernels_equivalence.rs",
            "fn prove() { assert_eq!(ones(1), reference::ones(1)); }\n",
        ),
        unit(
            "crates/b/src/stats.rs",
            "pub struct IoStats { pub reads: u64, pub label: String }\n\
             impl Mergeable for IoStats {\n    fn merge_from(&mut self, o: &Self) {\n        self.reads = self.reads.saturating_add(o.reads);\n    }\n}\n",
        ),
        unit(
            "crates/b/src/fold.rs",
            "pub fn fold(r: &mut RunResult, s: &IoStats) { r.io.merge_from(s); }\n",
        ),
        unit(
            "crates/c/src/time.rs",
            "pub enum QueueBackend { Calendar, Heap }\n\
             pub fn lookup_ps(cell: u8) -> u64 { 0 }\n\
             pub fn lookup_ps_reference(cell: u8) -> u64 { 0 }\n",
        ),
        unit(
            "crates/c/src/geometry.rs",
            "pub struct Grid<T> { pub cells: Vec<T> }\n\
             impl<T> Grid<T> {\n    pub fn area(&self, rows_x: usize, cols_y: usize) -> usize { rows_x * cols_y }\n}\n",
        ),
    ]
}

/// Deterministic Fisher–Yates driven by a SplitMix64 stream.
fn shuffle(units: &mut [SourceUnit], mut seed: u64) {
    let mut next = || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..units.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        units.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn symbol_index_is_visit_order_independent(seed in any::<u64>()) {
        let baseline = SymbolIndex::from_units(&corpus());
        let mut shuffled = corpus();
        shuffle(&mut shuffled, seed);
        let index = SymbolIndex::from_units(&shuffled);
        prop_assert_eq!(index, baseline);
    }

    #[test]
    fn dropping_a_file_changes_the_index(drop in 0usize..6) {
        let baseline = SymbolIndex::from_units(&corpus());
        let mut partial = corpus();
        partial.remove(drop);
        let index = SymbolIndex::from_units(&partial);
        prop_assert_ne!(index, baseline);
    }
}
