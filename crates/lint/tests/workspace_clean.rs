//! The live workspace must be lint-clean: zero findings across every
//! source file. This is the same gate `scripts/verify.sh` enforces via the
//! CLI; running it as a test keeps `cargo test` sufficient to catch a
//! violation without the full verify pipeline.

use std::path::Path;

use ladder_lint::{run_workspace, to_json};

#[test]
fn live_workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels under the workspace root");
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let findings = run_workspace(root).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "workspace is not lint-clean:\n{}",
        to_json(&findings)
    );
}
