//! The live workspace must be lint-clean: zero findings across every
//! source file and every rule — including the cross-crate semantic pass
//! (fast/reference twins, Mergeable coverage, unit mixing, counter
//! overflow policy, dead pragmas). This is the same gate
//! `scripts/verify.sh` enforces via the CLI; running it as a test keeps
//! `cargo test` sufficient to catch a violation without the full verify
//! pipeline.

use std::path::Path;

use ladder_lint::{run_workspace, to_json, RULES};

fn workspace_root() -> &'static Path {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels under the workspace root");
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    root
}

#[test]
fn live_workspace_has_zero_findings() {
    let report = run_workspace(workspace_root()).expect("walk workspace");
    assert!(
        report.findings.is_empty(),
        "workspace is not lint-clean:\n{}",
        to_json(&report.findings)
    );
}

#[test]
fn workspace_run_reports_stats_for_every_rule() {
    let report = run_workspace(workspace_root()).expect("walk workspace");
    assert!(report.files > 50, "only {} files discovered", report.files);
    // Index row + one per cataloged rule + the pragma-error row.
    assert_eq!(report.stats.len(), RULES.len() + 2);
    assert_eq!(report.stats[0].rule, "symbol-index");
    assert!(
        report.stats[0].nanos > 0,
        "symbol index build took zero time?"
    );
    for rule in RULES {
        assert!(
            report.stats.iter().any(|s| s.rule == rule.name),
            "no stat row for rule `{}`",
            rule.name
        );
    }
}
