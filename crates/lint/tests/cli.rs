//! End-to-end CLI contract: the documented exit codes (0 clean,
//! 1 findings, 2 usage/IO error) and the machine-readable output modes.
//! `scripts/verify.sh` and CI shell scripts branch on these codes, so
//! they are asserted here rather than left as documentation.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ladder-lint")
}

fn fixtures_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(kind)
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spawn ladder-lint")
}

fn scratch_root(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(name)
        .join(format!("pid{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch root");
    }
    for (rel, contents) in files {
        let path = dir.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(path, contents).expect("write scratch file");
    }
    dir
}

#[test]
fn exit_zero_on_a_clean_tree() {
    let root = scratch_root(
        "clean",
        &[(
            "crates/x/src/lib.rs",
            "pub fn double(v: u64) -> u64 { v * 2 }\n",
        )],
    );
    let out = run(&["--root", root.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("clean"));
}

#[test]
fn exit_one_when_findings_are_reported() {
    let root = scratch_root(
        "dirty",
        &[(
            "crates/sim/src/lib.rs",
            "use std::collections::HashMap;\npub fn f(m: &HashMap<u64, u64>) -> u64 { m.len() as u64 }\n",
        )],
    );
    let out = run(&["--root", root.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("hash-iter"));
}

#[test]
fn exit_two_on_usage_and_io_errors() {
    assert_eq!(run(&["--no-such-flag"]).status.code(), Some(2));
    assert_eq!(run(&["--root"]).status.code(), Some(2));
    assert_eq!(run(&["--json", "--sarif"]).status.code(), Some(2));
    assert_eq!(
        run(&["--root", "/nonexistent/lint/root"]).status.code(),
        Some(2)
    );
    assert_eq!(
        run(&["--fixtures", "/nonexistent/fixture/dir"])
            .status
            .code(),
        Some(2)
    );
}

#[test]
fn fixture_corpus_self_check_exit_codes() {
    // The bad corpus reports findings (that is its job): exit 1.
    let bad = fixtures_dir("bad");
    let out = run(&["--fixtures", bad.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    // The clean corpus reports nothing: exit 0.
    let clean = fixtures_dir("clean");
    let out = run(&["--fixtures", clean.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn sarif_output_is_schema_shaped_and_byte_stable() {
    let bad = fixtures_dir("bad");
    let args = ["--sarif", "--fixtures", bad.to_str().expect("utf8 path")];
    let first = run(&args);
    let second = run(&args);
    assert_eq!(first.status.code(), Some(1));
    assert_eq!(
        first.stdout, second.stdout,
        "SARIF output is not byte-stable"
    );

    let sarif = String::from_utf8(first.stdout).expect("utf8 sarif");
    // Minimal SARIF 2.1.0 shape: schema pointer, version, driver, and one
    // result per finding with a physical location.
    assert!(sarif.contains("\"$schema\""));
    assert!(sarif.contains("sarif-schema-2.1.0.json"));
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("\"name\": \"ladder-lint\""));
    assert!(sarif.contains("\"ruleId\": \"hash-iter\""));
    assert!(sarif.contains("\"ruleId\": \"counter-overflow-policy\""));
    assert!(sarif.contains("\"startLine\""));
    assert!(sarif.contains("\"startColumn\""));
    // Balanced braces/brackets — cheap structural sanity without a JSON
    // parser (the workspace is dependency-free by design).
    let balance = |open: char, close: char| {
        sarif.chars().filter(|&c| c == open).count()
            == sarif.chars().filter(|&c| c == close).count()
    };
    assert!(balance('{', '}'));
    assert!(balance('[', ']'));
}

#[test]
fn json_and_sarif_render_the_same_findings() {
    let bad = fixtures_dir("bad");
    let json = run(&["--json", "--fixtures", bad.to_str().expect("utf8 path")]);
    let sarif = run(&["--sarif", "--fixtures", bad.to_str().expect("utf8 path")]);
    let json = String::from_utf8(json.stdout).expect("utf8 json");
    let sarif = String::from_utf8(sarif.stdout).expect("utf8 sarif");
    let rule_count = |hay: &str, needle: &str| hay.matches(needle).count();
    for rule in ladder_lint::RULES {
        assert_eq!(
            rule_count(&json, &format!("\"rule\":\"{}\"", rule.name)),
            rule_count(&sarif, &format!("\"ruleId\": \"{}\"", rule.name)),
            "finding count for `{}` differs between --json and --sarif",
            rule.name
        );
    }
}
