//! Pass 2 of the two-pass analyzer: cross-crate semantic rules.
//!
//! These rules consult the [`SymbolIndex`](crate::index::SymbolIndex)
//! built over the whole corpus, so they can enforce disciplines no
//! single-file scan can see:
//!
//! * **fast-ref-twin** — every reference kernel (a `pub fn` in a
//!   `reference` module, a `*_reference`-suffixed `pub fn`, or a
//!   designated reference enum variant such as `QueueBackend::Heap`)
//!   must have a same-signature fast twin *and* be exercised by an
//!   equivalence test (`tests/*equivalence*.rs`). A fast kernel whose
//!   reference twin or proof vanishes is a finding (DESIGN §15).
//! * **mergeable-coverage** — every `*Stats`/`*Counts` struct in the
//!   fold-scope crates must `impl Mergeable` and be folded into
//!   `RunResult` or a shard-fold path, so no counter silently drops out
//!   of the sharded accounting.
//! * **unit-mixing** — arithmetic that mixes `_ps`- and `_ns`-suffixed
//!   identifiers in one statement without an explicit conversion call is
//!   a finding; the ps-domain timing tables depend on callers never
//!   adding nanoseconds to picoseconds bare.
//! * **counter-overflow-policy** — in `merge`/`merge_from`/`fold*`
//!   bodies of counter structs, `+=` and `wrapping_add` on integer
//!   counter fields are findings: fold paths accumulate across shards
//!   and must saturate (or check) rather than wrap.
//!
//! The fifth semantic rule, **dead-pragma**, lives in the pipeline
//! ([`crate::rules::analyze_units`]) because it needs the pragma usage
//! record produced while filtering every other rule's findings.

use crate::index::{FnItem, SymbolIndex};
use crate::lexer::{Token, TokenKind};
use crate::rules::{in_spans, FileUnit, Finding};

/// Enum variants that are reference implementations by designation: the
/// fast twin is a sibling variant, so only the equivalence-test proof is
/// checked.
const REFERENCE_VARIANTS: &[(&str, &str)] = &[("QueueBackend", "Heap")];

/// Crates whose `*Stats`/`*Counts` structs must participate in the
/// Mergeable fold (the `mergeable-coverage` scope).
const FOLD_SCOPE: &[&str] = &[
    "crates/sim/src/",
    "crates/trace/src/",
    "crates/faults/src/",
    "crates/coding/src/",
    "crates/wear/src/",
];

/// Crates whose merge/fold paths are held to the counter overflow policy.
const COUNTER_SCOPE: &[&str] = &[
    "crates/sim/src/",
    "crates/trace/src/",
    "crates/faults/src/",
    "crates/coding/src/",
    "crates/wear/src/",
    "crates/memctrl/src/",
];

/// Calls that make a `_ps`/`_ns` co-occurrence an explicit, intentional
/// conversion rather than a unit mix.
const CONVERSIONS: &[&str] = &[
    "as_ps", "as_ns", "from_ps", "from_ns", "to_ps", "to_ns", "ns_to_ps", "ps_to_ns",
];

/// Integer type names whose struct fields count as overflowable counters.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.contains("/tests/")
        || path.starts_with("benches/")
        || path.contains("/benches/")
}

fn is_equivalence_test_path(path: &str) -> bool {
    let file = path.rsplit('/').next().unwrap_or(path);
    (path.starts_with("tests/") || path.contains("/tests/")) && file.contains("equivalence")
}

/// Whether this indexed fn is itself a reference implementation.
fn is_reference_fn(f: &FnItem) -> bool {
    f.modules.iter().any(|m| m == "reference") || f.name.ends_with("_reference")
}

// ---------------------------------------------------------------------------
// fast-ref-twin
// ---------------------------------------------------------------------------

/// Every reference kernel needs a same-signature fast twin and an
/// equivalence test that mentions it. At most one finding per kernel:
/// the missing twin is reported first (without a twin the test question
/// is moot).
pub(crate) fn check_fast_ref_twin(index: &SymbolIndex, findings: &mut Vec<Finding>) {
    let equivalence_mentions = |name: &str| {
        index
            .file_idents
            .iter()
            .any(|(path, idents)| is_equivalence_test_path(path) && idents.contains(name))
    };

    for f in &index.fns {
        if is_test_path(&f.file) || !f.is_pub || !is_reference_fn(f) {
            continue;
        }
        let base = f.name.strip_suffix("_reference").unwrap_or(&f.name);
        let has_twin = index.fns.iter().any(|g| {
            !std::ptr::eq(f, g)
                && !is_reference_fn(g)
                && !is_test_path(&g.file)
                && g.name == base
                && g.sig == f.sig
        });
        if !has_twin {
            findings.push(Finding {
                rule: "fast-ref-twin",
                path: f.file.clone(),
                line: f.line,
                col: f.col,
                message: format!(
                    "reference kernel `{}` has no same-signature fast twin \
                     `{base}`; every reference implementation pairs with a \
                     fast path (DESIGN §15)",
                    f.name
                ),
            });
        } else if !equivalence_mentions(&f.name) {
            findings.push(Finding {
                rule: "fast-ref-twin",
                path: f.file.clone(),
                line: f.line,
                col: f.col,
                message: format!(
                    "reference kernel `{}` is not referenced from any \
                     equivalence test (tests/*equivalence*.rs); the fast \
                     twin `{base}` is unproven without it",
                    f.name
                ),
            });
        }
    }

    for (enum_name, variant) in REFERENCE_VARIANTS {
        for e in &index.enums {
            if e.name != *enum_name || is_test_path(&e.file) {
                continue;
            }
            let Some((_, line, col)) = e.variants.iter().find(|v| v.0 == *variant) else {
                continue;
            };
            let proven = index.file_idents.iter().any(|(path, idents)| {
                is_equivalence_test_path(path)
                    && idents.contains(*enum_name)
                    && idents.contains(*variant)
            });
            if !proven {
                findings.push(Finding {
                    rule: "fast-ref-twin",
                    path: e.file.clone(),
                    line: *line,
                    col: *col,
                    message: format!(
                        "reference backend `{enum_name}::{variant}` is not \
                         referenced from any equivalence test \
                         (tests/*equivalence*.rs)"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// mergeable-coverage
// ---------------------------------------------------------------------------

/// Every `*Stats`/`*Counts` struct in the fold-scope crates must impl
/// `Mergeable` and appear in a fold path (a file that also mentions
/// `RunResult` or `merge_digests`). One finding per struct, first
/// failure only.
pub(crate) fn check_mergeable_coverage(index: &SymbolIndex, findings: &mut Vec<Finding>) {
    for s in &index.structs {
        if !FOLD_SCOPE.iter().any(|p| s.file.starts_with(p)) {
            continue;
        }
        if !(s.name.ends_with("Stats") || s.name.ends_with("Counts")) {
            continue;
        }
        if !index.has_trait_impl("Mergeable", &s.name) {
            findings.push(Finding {
                rule: "mergeable-coverage",
                path: s.file.clone(),
                line: s.line,
                col: s.col,
                message: format!(
                    "counter struct `{}` does not `impl Mergeable`; every \
                     *Stats/*Counts struct in the fold scope must merge \
                     deterministically across shards",
                    s.name
                ),
            });
            continue;
        }
        let folded = index.file_idents.iter().any(|(_, idents)| {
            idents.contains(&s.name)
                && (idents.contains("RunResult") || idents.contains("merge_digests"))
        });
        if !folded {
            findings.push(Finding {
                rule: "mergeable-coverage",
                path: s.file.clone(),
                line: s.line,
                col: s.col,
                message: format!(
                    "counter struct `{}` is never folded into `RunResult` \
                     or a shard-fold path (`merge_digests`); its counters \
                     would drop out of sharded accounting",
                    s.name
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// unit-mixing
// ---------------------------------------------------------------------------

/// The unit a suffixed identifier carries.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Unit {
    Ps,
    Ns,
}

fn unit_of(name: &str) -> Option<Unit> {
    if CONVERSIONS.contains(&name) {
        return None;
    }
    if name.ends_with("_ps") {
        Some(Unit::Ps)
    } else if name.ends_with("_ns") {
        Some(Unit::Ns)
    } else {
        None
    }
}

/// Arithmetic mixing `_ps` and `_ns` identifiers in one statement
/// without a conversion call. Statements are token runs between
/// `;`/`{`/`}`/`,` — commas split so separate call arguments never mix.
pub(crate) fn check_unit_mixing(files: &[FileUnit], findings: &mut Vec<Finding>) {
    for file in files {
        if !file.rel_path.starts_with("crates/")
            || !file.rel_path.contains("/src/")
            || is_test_path(&file.rel_path)
        {
            continue;
        }
        let tokens = &file.lexed.tokens;
        let mut seg = Segment::default();
        for (i, t) in tokens.iter().enumerate() {
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct(',') {
                seg.flush(file, findings);
                continue;
            }
            match &t.kind {
                TokenKind::Ident(name) => {
                    if CONVERSIONS.contains(&name.as_str()) {
                        seg.has_conversion = true;
                    } else if let Some(u) = unit_of(name) {
                        seg.note_unit(u, t);
                    }
                    seg.prev_operand = true;
                }
                TokenKind::Number => seg.prev_operand = true,
                TokenKind::Punct(c) => {
                    let binary = matches!(c, '+' | '-' | '*' | '/' | '%')
                        && seg.prev_operand
                        && !(*c == '-' && tokens.get(i + 1).is_some_and(|n| n.is_punct('>')));
                    if binary {
                        seg.has_arith = true;
                    }
                    seg.prev_operand = matches!(c, ')' | ']');
                }
                _ => seg.prev_operand = false,
            }
        }
        seg.flush(file, findings);
    }
}

/// Per-statement accumulator for `unit-mixing`.
#[derive(Default)]
struct Segment {
    first: Option<(Unit, usize, usize)>,
    mixed_at: Option<(usize, usize)>,
    has_arith: bool,
    has_conversion: bool,
    /// Whether the previous token can end an operand (so the next
    /// `+`/`-`/`*`/`/` is a binary operator, not a unary sign or deref).
    prev_operand: bool,
}

impl Segment {
    fn note_unit(&mut self, u: Unit, t: &Token) {
        match self.first {
            None => self.first = Some((u, t.line, t.col)),
            Some((fu, _, _)) if fu != u && self.mixed_at.is_none() => {
                self.mixed_at = Some((t.line, t.col));
            }
            _ => {}
        }
    }

    fn flush(&mut self, file: &FileUnit, findings: &mut Vec<Finding>) {
        if let Some((line, col)) = self.mixed_at {
            if self.has_arith && !self.has_conversion && !in_spans(&file.tests, line) {
                findings.push(Finding {
                    rule: "unit-mixing",
                    path: file.rel_path.clone(),
                    line,
                    col,
                    message: "statement mixes `_ps` and `_ns` identifiers in \
                              arithmetic without an explicit conversion call \
                              (`Picos::from_ns`, `as_ns`, ...); pick one time \
                              domain per expression"
                        .to_string(),
                });
            }
        }
        *self = Segment::default();
    }
}

// ---------------------------------------------------------------------------
// counter-overflow-policy
// ---------------------------------------------------------------------------

/// `+=` / `wrapping_add` on integer counter fields inside the
/// merge/fold methods of `*Stats`/`*Counts` impls. Record-path
/// increments stay `+=` (hot loop); only the cross-shard fold must
/// saturate or check.
pub(crate) fn check_counter_overflow(
    files: &[FileUnit],
    index: &SymbolIndex,
    findings: &mut Vec<Finding>,
) {
    for f in &index.fns {
        if !COUNTER_SCOPE.iter().any(|p| f.file.starts_with(p)) {
            continue;
        }
        if !(f.name == "merge" || f.name == "merge_from" || f.name.starts_with("fold")) {
            continue;
        }
        let Some(ty) = f.impl_type.as_deref() else {
            continue;
        };
        if !(ty.ends_with("Stats") || ty.ends_with("Counts")) {
            continue;
        }
        let Some(st) = index.struct_named(ty) else {
            continue;
        };
        let counters: Vec<&str> = st
            .fields
            .iter()
            .filter(|(_, ty)| ty.split(' ').any(|w| INT_TYPES.contains(&w)))
            .map(|(name, _)| name.as_str())
            .collect();
        if counters.is_empty() {
            continue;
        }
        let Some((open, close)) = f.body else {
            continue;
        };
        let Some(unit) = files.iter().find(|u| u.rel_path == f.file) else {
            continue;
        };
        let tokens = &unit.lexed.tokens;
        for k in open..=close.min(tokens.len().saturating_sub(1)) {
            let t = &tokens[k];
            // `field += ...`: `+` directly followed by `=` in the source.
            let compound = t.is_punct('+')
                && tokens
                    .get(k + 1)
                    .is_some_and(|n| n.is_punct('=') && n.line == t.line && n.col == t.col + 1);
            if compound {
                if let Some(field) = self_field_before(tokens, k, &counters) {
                    findings.push(Finding {
                        rule: "counter-overflow-policy",
                        path: f.file.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "counter `{ty}.{field}` merges with `+=`; fold \
                             paths accumulate across shards and must use \
                             `saturating_add`/`checked_add` (DESIGN §16)"
                        ),
                    });
                }
            }
            // `field.wrapping_add(...)` / `field = field.wrapping_add(..)`.
            if t.is_ident("wrapping_add") && k > 0 && tokens[k - 1].is_punct('.') {
                if let Some(field) = self_field_before(tokens, k - 1, &counters) {
                    findings.push(Finding {
                        rule: "counter-overflow-policy",
                        path: f.file.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "counter `{ty}.{field}` merges with \
                             `wrapping_add`; fold paths must use \
                             `saturating_add`/`checked_add` (DESIGN §16)"
                        ),
                    });
                }
            }
        }
    }
}

/// If the tokens ending just before `op` spell `self.<field>` (with an
/// optional trailing `[...]` index), and `<field>` is one of `counters`,
/// returns the field name.
fn self_field_before<'a>(tokens: &[Token], op: usize, counters: &[&'a str]) -> Option<&'a str> {
    let mut k = op;
    // Skip a `[...]` index group backwards.
    if k > 0 && tokens[k - 1].is_punct(']') {
        let mut depth = 0i32;
        while k > 0 {
            k -= 1;
            if tokens[k].is_punct(']') {
                depth += 1;
            } else if tokens[k].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
    }
    if k < 3 {
        return None;
    }
    let field = tokens[k - 1].ident()?;
    if !tokens[k - 2].is_punct('.') || !tokens[k - 3].is_ident("self") {
        return None;
    }
    counters.iter().find(|c| **c == field).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::SymbolIndex;
    use crate::rules::{analyze_units, SourceUnit};

    fn unit(path: &str, src: &str) -> SourceUnit {
        SourceUnit {
            rel_path: path.to_string(),
            source: src.to_string(),
        }
    }

    fn rules_fired(units: &[SourceUnit]) -> Vec<&'static str> {
        analyze_units(units)
            .findings
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    const KERNEL: &str = "pub fn frob(x: u64) -> u64 { x }\n\
                          pub mod reference {\n    pub fn frob(x: u64) -> u64 { x }\n}\n";

    #[test]
    fn fast_ref_twin_wants_twin_and_equivalence_proof() {
        // Twin + proof: clean.
        let proof = unit(
            "tests/kernels_equivalence.rs",
            "#[test]\nfn agree() { assert_eq!(frob(1), reference::frob(1)); }\n",
        );
        let clean = [unit("crates/reram/src/kern.rs", KERNEL), proof.clone()];
        assert!(rules_fired(&clean).is_empty());

        // No proof: one finding.
        let unproven = [unit("crates/reram/src/kern.rs", KERNEL)];
        assert_eq!(rules_fired(&unproven), vec!["fast-ref-twin"]);

        // No twin (signature drifted): one finding, even with the proof.
        let drifted = "pub fn frob(x: u32) -> u32 { x }\n\
                       pub mod reference {\n    pub fn frob(x: u64) -> u64 { x }\n}\n";
        let bad = [unit("crates/reram/src/kern.rs", drifted), proof];
        assert_eq!(rules_fired(&bad), vec!["fast-ref-twin"]);
    }

    #[test]
    fn suffixed_reference_fn_twins_by_base_name() {
        let src = "impl T {\n\
                   pub fn lookup_ps(&self, wl: usize) -> u64 { 0 }\n\
                   pub fn lookup_ps_reference(&self, wl: usize) -> u64 { 0 }\n\
                   }\n";
        let proof = unit(
            "tests/hotloop_equivalence.rs",
            "#[test]\nfn t() { lookup_ps_reference(); }\n",
        );
        assert!(rules_fired(&[unit("crates/xbar/src/table.rs", src), proof]).is_empty());
        assert_eq!(
            rules_fired(&[unit("crates/xbar/src/table.rs", src)]),
            vec!["fast-ref-twin"]
        );
    }

    #[test]
    fn reference_variant_needs_equivalence_mention() {
        let src = "pub enum QueueBackend { Calendar, Heap }\n";
        assert_eq!(
            rules_fired(&[unit("crates/reram/src/time.rs", src)]),
            vec!["fast-ref-twin"]
        );
        let proof = unit(
            "tests/hotloop_equivalence.rs",
            "#[test]\nfn t() { let _ = QueueBackend::Heap; }\n",
        );
        assert!(rules_fired(&[unit("crates/reram/src/time.rs", src), proof]).is_empty());
    }

    #[test]
    fn mergeable_coverage_requires_impl_and_fold() {
        let bare = "pub struct TallyStats { pub hits: u64 }\n";
        assert_eq!(
            rules_fired(&[unit("crates/coding/src/tally.rs", bare)]),
            vec!["mergeable-coverage"]
        );
        // Out-of-scope crate: silent.
        assert!(rules_fired(&[unit("crates/xbar/src/tally.rs", bare)]).is_empty());

        let with_impl = "pub struct TallyStats { pub hits: u64 }\n\
             impl Mergeable for TallyStats {\n    fn merge_from(&mut self, o: &Self) {\n        self.hits = self.hits.saturating_add(o.hits);\n    }\n}\n";
        // Impl but never folded: still a finding.
        assert_eq!(
            rules_fired(&[unit("crates/coding/src/tally.rs", with_impl)]),
            vec!["mergeable-coverage"]
        );
        // Folded into RunResult elsewhere: clean.
        let fold = unit(
            "crates/sim/src/system.rs",
            "pub struct RunResult { pub tally: TallyStats }\n",
        );
        assert!(rules_fired(&[unit("crates/coding/src/tally.rs", with_impl), fold]).is_empty());
    }

    #[test]
    fn unit_mixing_catches_bare_arithmetic_only() {
        let bad = "pub fn f(t_ps: u64, extra_ns: u64) -> u64 { t_ps + extra_ns }\n";
        assert_eq!(
            rules_fired(&[unit("crates/sim/src/x.rs", bad)]),
            vec!["unit-mixing"]
        );
        let converted = "pub fn f(t_ps: u64, extra_ns: u64) -> u64 { t_ps + ns_to_ps(extra_ns) }\n";
        assert!(rules_fired(&[unit("crates/sim/src/x.rs", converted)]).is_empty());
        // Same unit: fine. Separate call arguments: fine.
        let same = "pub fn f(a_ns: u64, b_ns: u64) -> u64 { a_ns + b_ns }\n";
        assert!(rules_fired(&[unit("crates/sim/src/x.rs", same)]).is_empty());
        let args = "pub fn f(a_ps: u64, b_ns: u64) { g(a_ps, b_ns); }\n";
        assert!(rules_fired(&[unit("crates/sim/src/x.rs", args)]).is_empty());
        // No arithmetic: fine.
        let cmp = "pub fn f(a_ps: u64, b_ns: u64) -> bool { a_ps == b_ns }\n";
        assert!(rules_fired(&[unit("crates/sim/src/x.rs", cmp)]).is_empty());
    }

    #[test]
    fn counter_overflow_flags_merge_but_not_record_paths() {
        let src = "pub struct TallyStats { pub hits: u64, pub label: String }\n\
                   impl TallyStats {\n\
                   pub fn count(&mut self) { self.hits += 1; }\n\
                   pub fn merge(&mut self, o: &Self) { self.hits += o.hits; }\n\
                   }\n";
        let fired = rules_fired(&[unit("crates/memctrl/src/tally.rs", src)]);
        assert_eq!(fired, vec!["counter-overflow-policy"]);

        let saturating = "pub struct TallyStats { pub hits: u64 }\n\
                          impl TallyStats {\n\
                          pub fn merge(&mut self, o: &Self) { self.hits = self.hits.saturating_add(o.hits); }\n\
                          }\n";
        assert!(rules_fired(&[unit("crates/memctrl/src/tally.rs", saturating)]).is_empty());

        let wrapping = "pub struct TallyStats { pub hits: u64 }\n\
                        impl TallyStats {\n\
                        pub fn merge(&mut self, o: &Self) { self.hits = self.hits.wrapping_add(o.hits); }\n\
                        }\n";
        assert_eq!(
            rules_fired(&[unit("crates/memctrl/src/tally.rs", wrapping)]),
            vec!["counter-overflow-policy"]
        );
    }

    #[test]
    fn counter_overflow_handles_array_counters_and_scope() {
        let arrays = "pub struct BinCounts { pub bins: [u64; 4] }\n\
                      impl BinCounts {\n\
                      pub fn merge_from(&mut self, o: &Self) { self.bins[0] += o.bins[0]; }\n\
                      }\n";
        assert_eq!(
            rules_fired(&[unit("crates/memctrl/src/bins.rs", arrays)]),
            vec!["counter-overflow-policy"]
        );
        // Out of scope (crates/core): silent.
        assert!(rules_fired(&[unit("crates/core/src/bins.rs", arrays)]).is_empty());
    }

    #[test]
    fn non_counter_fields_do_not_fire() {
        let src = "pub struct SpanStats { pub wall: Duration, pub peak: u64 }\n\
                   impl SpanStats {\n\
                   pub fn merge(&mut self, o: &Self) {\n\
                   self.wall += o.wall;\n\
                   self.peak = self.peak.max(o.peak);\n\
                   }\n}\n";
        // `wall: Duration` is not an integer counter; `max` is fine.
        // (mergeable-coverage is quiet: memctrl is outside its scope.)
        assert!(rules_fired(&[unit("crates/memctrl/src/span.rs", src)]).is_empty());
    }

    #[test]
    fn index_twin_lookup_sees_across_files() {
        let index = SymbolIndex::from_units(&[
            unit(
                "crates/a/src/lib.rs",
                "pub mod reference { pub fn ham(x: u8) -> u8 { x } }",
            ),
            unit("crates/b/src/lib.rs", "pub fn ham(x: u8) -> u8 { x }"),
        ]);
        let mut findings = Vec::new();
        check_fast_ref_twin(&index, &mut findings);
        // Twin found across crates; only the missing equivalence proof fires.
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("equivalence"));
    }
}
