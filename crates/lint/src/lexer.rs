//! A hand-rolled Rust token scanner.
//!
//! The analyzer must run on the `--offline`, path-local workspace, so it
//! cannot use `syn` or any registry crate. This lexer implements exactly
//! the subset of Rust's lexical grammar the rules need to be sound:
//! strings (plain, raw, byte, raw-byte), char literals, lifetimes, line
//! and (nested) block comments, identifiers (including raw `r#ident`),
//! numbers and punctuation. Everything inside strings and comments is
//! invisible to rules — `"HashMap"` in a string or `// unwrap()` in a
//! comment never fires a finding — while line comments are captured
//! separately so the pragma grammar can see them.

/// What a scanned token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `as`, `impl`, ...).
    Ident(String),
    /// A numeric literal (value not retained; no rule needs it).
    Number,
    /// A string literal of any flavor (contents not retained).
    Str,
    /// A character or byte literal.
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character.
    Punct(char),
}

/// One token with its source position (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind (and text, for identifiers).
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (in characters).
    pub col: usize,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// A `//` line comment, captured for the pragma grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// 1-based column of the `//` marker (where pragma findings anchor).
    pub col: usize,
    /// Whether only whitespace precedes the comment on its line (an
    /// own-line pragma also covers the following line).
    pub own_line: bool,
    /// Text after the `//` marker, untrimmed.
    pub text: String,
}

/// The result of scanning one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Line comments, in source order.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans `src` into tokens and line comments.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    // Whether a token already appeared on the current line (to tell an
    // own-line comment from a trailing one).
    let mut line_has_token = false;
    let mut token_line = 0usize;

    while let Some(c) = cur.peek() {
        if cur.line != token_line {
            line_has_token = false;
        }
        let (line, col) = (cur.line, cur.col);
        match c {
            ch if ch.is_whitespace() => {
                cur.bump();
                continue;
            }
            '/' if cur.peek_at(1) == Some('/') => {
                cur.bump();
                cur.bump();
                let mut text = String::new();
                while let Some(ch) = cur.peek() {
                    if ch == '\n' {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
                out.comments.push(Comment {
                    line,
                    col,
                    own_line: !line_has_token,
                    text,
                });
                continue;
            }
            '/' if cur.peek_at(1) == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some('/'), Some('*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break, // unterminated; tolerate
                    }
                }
                continue;
            }
            '"' => {
                scan_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    line,
                    col,
                });
            }
            '\'' => {
                let kind = scan_char_or_lifetime(&mut cur);
                out.tokens.push(Token { kind, line, col });
            }
            'r' | 'b' if starts_string_prefix(&cur) => {
                let kind = scan_prefixed_literal(&mut cur);
                out.tokens.push(Token { kind, line, col });
            }
            ch if is_ident_start(ch) => {
                let mut text = String::new();
                while let Some(ch) = cur.peek() {
                    if !is_ident_continue(ch) {
                        break;
                    }
                    text.push(ch);
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    line,
                    col,
                });
            }
            ch if ch.is_ascii_digit() => {
                while let Some(ch) = cur.peek() {
                    // `.` continues the number only when a digit follows,
                    // so `0..5` and `1.0.sqrt()` tokenize correctly.
                    let continues = is_ident_continue(ch)
                        || (ch == '.' && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()));
                    if !continues {
                        break;
                    }
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    line,
                    col,
                });
            }
            ch => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct(ch),
                    line,
                    col,
                });
            }
        }
        line_has_token = true;
        token_line = line;
    }
    out
}

/// Whether the cursor sits on an `r`/`b`-prefixed string or byte literal
/// (as opposed to an ordinary identifier starting with `r` or `b`).
fn starts_string_prefix(cur: &Cursor) -> bool {
    match (cur.peek(), cur.peek_at(1), cur.peek_at(2)) {
        // `r"..."`, `r#"..."#` (raw string) and `r#ident` (raw identifier)
        // are all handled by `scan_prefixed_literal`.
        (Some('r'), Some('"'), _) | (Some('r'), Some('#'), _) => true,
        (Some('b'), Some('"'), _) | (Some('b'), Some('\''), _) => true,
        (Some('b'), Some('r'), Some('"')) | (Some('b'), Some('r'), Some('#')) => true,
        _ => false,
    }
}

/// Scans a `"`-delimited string; the opening quote is at the cursor.
fn scan_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(ch) = cur.bump() {
        match ch {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Scans a raw string with `hashes` trailing `#`s; the opening quote is at
/// the cursor.
fn scan_raw_string(cur: &mut Cursor, hashes: usize) {
    cur.bump(); // opening quote
    'outer: while let Some(ch) = cur.bump() {
        if ch == '"' {
            for i in 0..hashes {
                if cur.peek_at(i) != Some('#') {
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
}

/// Scans an `r`/`b`/`br`-prefixed literal (or raw identifier) starting at
/// the cursor and returns its token kind.
fn scan_prefixed_literal(cur: &mut Cursor) -> TokenKind {
    let first = cur.peek();
    if first == Some('b') {
        cur.bump(); // 'b'
        match cur.peek() {
            Some('\'') => {
                cur.bump();
                scan_char_body(cur);
                return TokenKind::Char;
            }
            Some('"') => {
                scan_string(cur);
                return TokenKind::Str;
            }
            Some('r') => {
                cur.bump(); // 'r'
                let mut hashes = 0;
                while cur.peek() == Some('#') {
                    hashes += 1;
                    cur.bump();
                }
                scan_raw_string(cur, hashes);
                return TokenKind::Str;
            }
            _ => return TokenKind::Ident("b".to_string()),
        }
    }
    // 'r' prefix: raw string or raw identifier.
    cur.bump(); // 'r'
    let mut hashes = 0;
    while cur.peek() == Some('#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek() == Some('"') {
        scan_raw_string(cur, hashes);
        TokenKind::Str
    } else {
        // Raw identifier `r#ident`.
        let mut text = String::new();
        while let Some(ch) = cur.peek() {
            if !is_ident_continue(ch) {
                break;
            }
            text.push(ch);
            cur.bump();
        }
        TokenKind::Ident(text)
    }
}

/// Scans the body of a char literal after its opening quote (an escape or
/// one character, then the closing quote).
fn scan_char_body(cur: &mut Cursor) {
    if cur.peek() == Some('\\') {
        cur.bump();
        cur.bump(); // escape head (`n`, `u`, `'`, ...)
        if cur.peek() == Some('{') {
            // `\u{...}`
            while let Some(ch) = cur.bump() {
                if ch == '}' {
                    break;
                }
            }
        }
    } else {
        cur.bump();
    }
    if cur.peek() == Some('\'') {
        cur.bump();
    }
}

/// Disambiguates `'a'` (char) from `'a` (lifetime); the opening quote is at
/// the cursor.
fn scan_char_or_lifetime(cur: &mut Cursor) -> TokenKind {
    cur.bump(); // opening quote
    if cur.peek() == Some('\\') {
        scan_char_body(cur);
        return TokenKind::Char;
    }
    if cur.peek().is_some_and(is_ident_start) {
        // Consume the identifier; a closing quote makes it a char literal
        // (`'x'`), anything else a lifetime (`'static`).
        while cur.peek().is_some_and(is_ident_continue) {
            cur.bump();
        }
        if cur.peek() == Some('\'') {
            cur.bump();
            return TokenKind::Char;
        }
        return TokenKind::Lifetime;
    }
    // Something like `' '` or `'('`.
    scan_char_body(cur);
    TokenKind::Char
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "HashMap::unwrap()"; // HashMap in a comment
            /* unwrap() in /* a nested */ block comment */
            let b = r#"Instant::now() "quoted" "#;
            let c = b"thread_rng";
        "##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn escaped_quote_char_literal() {
        let src = r"let q = '\''; let u = '\u{1F600}'; let n = b'\n';";
        let lexed = lex(src);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(chars, 3);
        assert_eq!(idents(src), vec!["let", "q", "let", "u", "let", "n"]);
    }

    #[test]
    fn comments_record_position_and_own_line() {
        let src = "let x = 1; // trailing\n// own line\nlet y = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].col, 12);
        assert!(!lexed.comments[0].own_line);
        assert_eq!(lexed.comments[1].line, 2);
        assert_eq!(lexed.comments[1].col, 1);
        assert!(lexed.comments[1].own_line);
        assert_eq!(lexed.comments[1].text.trim(), "own line");
    }

    #[test]
    fn numbers_do_not_swallow_method_calls_or_ranges() {
        let src = "let a = 1.0.sqrt(); for i in 0..5 {} let b = 4f64;";
        let ids = idents(src);
        assert!(ids.contains(&"sqrt".to_string()), "{ids:?}");
        assert!(ids.contains(&"in".to_string()));
    }

    #[test]
    fn raw_identifiers_keep_their_name() {
        let src = "let r#type = 1;";
        assert_eq!(idents(src), vec!["let", "type"]);
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let src = "let x = 1;\n  let y = 2;";
        let lexed = lex(src);
        let y = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("y"))
            .expect("token y");
        assert_eq!((y.line, y.col), (2, 7));
    }
}
