//! Deterministic workspace file discovery.
//!
//! The walker visits directories in sorted order and returns
//! workspace-relative `.rs` paths with forward slashes, so findings come
//! out in the same order on every run and every platform. Build output
//! (`target/`), VCS metadata (`.git/`) and the analyzer's own fixture
//! corpus (`fixtures/`) are skipped.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "node_modules"];

/// One discovered source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (the path rules match on).
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
}

/// Walks `root` and returns every tracked `.rs` file in sorted order.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(SourceFile {
                rel_path: relative(root, &path),
                abs_path: path,
            });
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_is_sorted_and_skips_fixtures() {
        // The lint crate's own tree is a convenient hermetic sample.
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = discover(here).expect("walk lint crate");
        let rels: Vec<&str> = files.iter().map(|f| f.rel_path.as_str()).collect();
        assert!(rels.contains(&"src/lexer.rs"));
        assert!(rels.contains(&"src/rules.rs"));
        assert!(rels.iter().all(|p| !p.starts_with("fixtures/")));
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted);
    }
}
