//! The inline allow-pragma grammar, with a full lifecycle.
//!
//! A finding is suppressed by a justified pragma comment:
//!
//! ```text
//! // lint: allow(<rule>) — <justification>
//! ```
//!
//! A trailing pragma covers findings on its own line; an own-line pragma
//! covers its own line and the next line (the idiom for chained-method
//! sites). The justification is mandatory and the rule name must exist —
//! a malformed pragma is itself reported (rule `pragma`), so a typo can
//! never silently disable anything. The separator before the
//! justification may be `—`, `–`, `-` or just whitespace.
//!
//! Pragmas are audited, not just consulted: the analysis pipeline
//! ([`crate::rules::analyze_units`]) records which pragma suppressed
//! which finding, and a well-formed pragma that suppresses nothing is
//! reported under the `dead-pragma` rule — stale escape hatches cannot
//! outlive the violation they once justified.

use crate::lexer::Comment;
use crate::rules::rule_exists;

/// One parsed, well-formed `lint: allow(...)` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// Line the pragma comment starts on.
    pub line: usize,
    /// Column of the `//` marker.
    pub col: usize,
    /// Rule it allows.
    pub rule: String,
    /// Justification text (may be empty — reported as malformed).
    pub justification: String,
    /// Whether the comment stood on its own line.
    pub own_line: bool,
}

impl Pragma {
    /// Whether this pragma covers findings of `rule` on `line`.
    pub fn covers(&self, rule: &str, line: usize) -> bool {
        self.rule == rule && (line == self.line || (self.own_line && line == self.line + 1))
    }
}

/// A malformed pragma, reported as a finding under the `pragma` rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaError {
    /// Line of the offending comment.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

/// Pragmas extracted from a file's comments, plus any parse errors.
#[derive(Debug, Default)]
pub struct Pragmas {
    /// Well-formed pragmas, in source order (indexable for usage
    /// tracking).
    pub pragmas: Vec<Pragma>,
    /// Malformed pragmas.
    pub errors: Vec<PragmaError>,
}

impl Pragmas {
    /// Whether `rule` is allowed at `line` by some pragma.
    pub fn allows(&self, rule: &str, line: usize) -> bool {
        self.covering(rule, line).is_some()
    }

    /// Index of the first pragma covering `rule` at `line`, if any.
    pub fn covering(&self, rule: &str, line: usize) -> Option<usize> {
        self.pragmas.iter().position(|p| p.covers(rule, line))
    }
}

/// Extracts every pragma from a file's line comments.
pub fn collect(comments: &[Comment]) -> Pragmas {
    let mut out = Pragmas::default();
    for c in comments {
        let Some(parsed) = parse_comment(c) else {
            continue;
        };
        match parsed {
            Ok(p) => {
                if !rule_exists(&p.rule) {
                    out.errors.push(PragmaError {
                        line: p.line,
                        message: format!(
                            "pragma allows unknown rule `{}` (see --list-rules)",
                            p.rule
                        ),
                    });
                    continue;
                }
                if p.justification.is_empty() {
                    out.errors.push(PragmaError {
                        line: p.line,
                        message: format!(
                            "pragma for `{}` is missing its justification \
                             (`// lint: allow({}) — <why>`)",
                            p.rule, p.rule
                        ),
                    });
                }
                // A justification-less pragma still suppresses (the error
                // above forces it to be fixed either way).
                out.pragmas.push(p);
            }
            Err(e) => out.errors.push(e),
        }
    }
    out
}

/// Parses one comment. `None` means "not a pragma at all"; `Some(Err)`
/// means it tried to be one and failed.
fn parse_comment(c: &Comment) -> Option<Result<Pragma, PragmaError>> {
    let text = c.text.trim();
    let rest = text.strip_prefix("lint:")?;
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Some(Err(PragmaError {
            line: c.line,
            message: "malformed pragma: expected `lint: allow(<rule>) — <why>`".to_string(),
        }));
    };
    let Some(close) = rest.find(')') else {
        return Some(Err(PragmaError {
            line: c.line,
            message: "malformed pragma: missing `)` after the rule name".to_string(),
        }));
    };
    let rule = rest[..close].trim().to_string();
    let justification = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '–', '-'])
        .trim()
        .to_string();
    Some(Ok(Pragma {
        line: c.line,
        col: c.col,
        rule,
        justification,
        own_line: c.own_line,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(line: usize, own_line: bool, text: &str) -> Comment {
        Comment {
            line,
            col: if own_line { 5 } else { 40 },
            own_line,
            text: text.to_string(),
        }
    }

    #[test]
    fn trailing_pragma_covers_its_own_line_only() {
        let p = collect(&[comment(7, false, " lint: allow(panic-policy) — invariant")]);
        assert!(p.allows("panic-policy", 7));
        assert!(!p.allows("panic-policy", 8));
        assert!(!p.allows("hash-iter", 7));
        assert!(p.errors.is_empty());
        assert_eq!(p.pragmas[0].col, 40);
    }

    #[test]
    fn own_line_pragma_also_covers_the_next_line() {
        let p = collect(&[comment(3, true, " lint: allow(wall-clock) -- progress bar")]);
        assert!(p.allows("wall-clock", 3));
        assert!(p.allows("wall-clock", 4));
        assert!(!p.allows("wall-clock", 5));
    }

    #[test]
    fn covering_returns_the_pragma_index() {
        let p = collect(&[
            comment(1, true, " lint: allow(hash-iter) — sorted at export"),
            comment(9, true, " lint: allow(wall-clock) — progress bar"),
        ]);
        assert_eq!(p.covering("wall-clock", 10), Some(1));
        assert_eq!(p.covering("hash-iter", 1), Some(0));
        assert_eq!(p.covering("hash-iter", 10), None);
    }

    #[test]
    fn unknown_rule_is_an_error_and_does_not_suppress() {
        let p = collect(&[comment(1, true, " lint: allow(no-such-rule) — whatever")]);
        assert_eq!(p.errors.len(), 1);
        assert!(p.errors[0].message.contains("no-such-rule"));
        assert!(!p.allows("no-such-rule", 1));
        assert!(p.pragmas.is_empty());
    }

    #[test]
    fn missing_justification_is_an_error() {
        let p = collect(&[comment(1, true, " lint: allow(hash-iter)")]);
        assert_eq!(p.errors.len(), 1);
        assert!(p.errors[0].message.contains("justification"));
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let p = collect(&[
            comment(1, true, " just a note about lint: things"),
            comment(2, true, "! module docs"),
        ]);
        assert!(p.errors.is_empty());
        assert!(p.pragmas.is_empty());
    }

    #[test]
    fn ascii_and_em_dash_separators_both_work() {
        for sep in ["—", "-", "--", ""] {
            let text = format!(" lint: allow(ambient-rng) {sep} seeded elsewhere");
            let p = collect(&[comment(1, true, &text)]);
            assert!(p.errors.is_empty(), "sep {sep:?}: {:?}", p.errors);
            assert!(p.allows("ambient-rng", 1));
        }
    }
}
