//! The rule catalog and the two-pass analysis engine.
//!
//! Every rule is deny-by-default: a violation is an error unless it sits
//! under a justified `// lint: allow(<rule>) — <why>` pragma
//! ([`crate::pragma`]). Rules are scoped by workspace-relative path (see
//! each rule's `scope` string, also printed by `--list-rules`), and all of
//! them skip `#[cfg(test)]` / `#[test]` item spans — test code may panic
//! and hash freely; the invariants protect what ships in the simulation
//! and accounting paths.
//!
//! Analysis runs in two passes over a corpus of [`SourceUnit`]s
//! ([`analyze_units`]): pass 1 runs the per-file rules and builds the
//! [`SymbolIndex`](crate::index::SymbolIndex); pass 2 runs the
//! cross-crate semantic rules ([`crate::semantic`]) against the index.
//! Pragma filtering happens once at the end so the `dead-pragma` rule
//! can see which pragmas suppressed anything at all.

use crate::index::SymbolIndex;
use crate::lexer::{lex, Lexed, Token};
use crate::pragma::{self, Pragmas};
use crate::semantic;
use std::collections::BTreeMap;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired (`pragma` for malformed pragmas).
    pub rule: &'static str,
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// Renders the finding in the `file:line:col: rule: message` form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: deny({}): {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// One source file handed to the analyzer (path + contents; nothing is
/// read from disk inside the engine, so fixtures can fabricate corpora).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceUnit {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Full file contents.
    pub source: String,
}

/// Per-rule outcome of one analysis run, for `--stats`.
#[derive(Debug, Clone, Copy)]
pub struct RuleStat {
    /// Rule name (`symbol-index` for the pass-1 index build).
    pub rule: &'static str,
    /// Findings that survived pragma filtering.
    pub findings: usize,
    /// Wall-clock nanoseconds spent in the rule across the corpus.
    pub nanos: u128,
}

/// The result of analyzing a corpus.
#[derive(Debug)]
pub struct AnalysisReport {
    /// All findings, sorted by (path, line, col, rule).
    pub findings: Vec<Finding>,
    /// Per-rule summary in catalog order (index row first).
    pub stats: Vec<RuleStat>,
    /// Number of files analyzed.
    pub files: usize,
}

/// Static description of one rule, for `--list-rules` and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule name as used in pragmas.
    pub name: &'static str,
    /// One-line summary of what it enforces.
    pub summary: &'static str,
    /// Where it applies.
    pub scope: &'static str,
}

/// The rule catalog (kept in sync with DESIGN.md §11 and §16).
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "hash-iter",
        summary: "no HashMap/HashSet in determinism-critical code; \
                  use BTreeMap/BTreeSet or sorted iteration",
        scope: "crates/{sim,trace,faults,wear,coding}/src (non-test spans)",
    },
    RuleInfo {
        name: "wall-clock",
        summary: "no Instant::now()/SystemTime outside the sanctioned \
                  wall-clock module",
        scope: "everywhere except crates/sim/src/wallclock.rs and the \
                criterion shim; tests/ and benches/ are exempt",
    },
    RuleInfo {
        name: "ambient-rng",
        summary: "no thread_rng/OsRng/RandomState or other ambient \
                  randomness; use the seeded generators",
        scope: "everywhere except crates/workloads/src/rng.rs and \
                crates/wear/src/rng_util.rs (including test code)",
    },
    RuleInfo {
        name: "lossy-cast",
        summary: "no lossy `as` casts to narrow numeric types in \
                  accounting code; use try_into or checked helpers",
        scope: "crates/trace/src plus every `impl Mergeable` block \
                (non-test spans)",
    },
    RuleInfo {
        name: "panic-policy",
        summary: "no unwrap()/expect()/panic! in non-test library code",
        scope: "crates/*/src except bin targets and the proptest/criterion \
                test-harness shims (non-test spans)",
    },
    RuleInfo {
        name: "bench-flags",
        summary: "every ladder-bench binary must parse the shared CLI \
                  (BenchArgs: --quick/--jobs/--topology) and wire --trace",
        scope: "crates/bench/src/bin",
    },
    RuleInfo {
        name: "flat-options",
        summary: "no struct-literal construction of SimConfig/ServiceConfig; \
                  go through their builder()s",
        scope: "everywhere except crates/sim/src/config.rs and \
                crates/sim/src/service.rs (the builder modules); tests/ \
                and test spans are exempt",
    },
    RuleInfo {
        name: "fast-ref-twin",
        summary: "every reference kernel (pub fn in a `reference` module, \
                  `*_reference` fn, or designated reference variant) needs \
                  a same-signature fast twin and an equivalence test",
        scope: "crates/*/src (cross-crate, via the symbol index); \
                equivalence proofs live in tests/*equivalence*.rs",
    },
    RuleInfo {
        name: "mergeable-coverage",
        summary: "every *Stats/*Counts struct must impl Mergeable and be \
                  folded into RunResult or a shard-fold path",
        scope: "crates/{sim,trace,faults,coding,wear}/src (cross-crate)",
    },
    RuleInfo {
        name: "unit-mixing",
        summary: "no arithmetic mixing `_ps` and `_ns` identifiers in one \
                  statement without an explicit conversion call",
        scope: "crates/*/src (non-test spans); tests/ and benches/ exempt",
    },
    RuleInfo {
        name: "counter-overflow-policy",
        summary: "merge/fold methods of counter structs must use \
                  saturating_/checked_ arithmetic, never `+=`/wrapping_add",
        scope: "crates/{sim,trace,faults,wear,coding,memctrl}/src, \
                merge/merge_from/fold* methods of *Stats/*Counts impls",
    },
    RuleInfo {
        name: "dead-pragma",
        summary: "a `// lint: allow(...)` pragma that suppresses nothing \
                  is itself a finding — pragmas are re-audited on every run",
        scope: "everywhere a pragma appears",
    },
];

/// Whether `name` is a real, pragma-allowable rule.
pub fn rule_exists(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// Path prefixes whose code feeds figures, traces or folded statistics —
/// the determinism-critical scope of `hash-iter`.
const DETERMINISM_SCOPE: &[&str] = &[
    "crates/sim/src/",
    "crates/trace/src/",
    "crates/faults/src/",
    "crates/wear/src/",
    "crates/coding/src/",
];

/// The only files allowed to touch the host wall clock.
const WALL_CLOCK_ALLOW: &[&str] = &["crates/sim/src/wallclock.rs", "crates/criterion/src/lib.rs"];

/// The only modules allowed to construct randomness.
const RNG_ALLOW: &[&str] = &["crates/workloads/src/rng.rs", "crates/wear/src/rng_util.rs"];

/// Identifiers that mean ambient (non-seeded) randomness.
const RNG_BANNED: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_entropy",
    "getrandom",
    "RandomState",
];

/// Cast targets that lose information from the workspace's `u64`/`f64`
/// accounting domain.
const NARROW_CASTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Test-harness shims whose API is panicking by design.
const PANIC_EXEMPT: &[&str] = &["crates/proptest/", "crates/criterion/"];

/// Where the bench-binary conformance rule applies.
const BENCH_BIN_SCOPE: &str = "crates/bench/src/bin/";

/// The builder modules — the only places allowed to write the run-config
/// struct literals that `flat-options` forbids everywhere else.
const FLAT_OPTIONS_ALLOW: &[&str] = &["crates/sim/src/config.rs", "crates/sim/src/service.rs"];

/// Run-config types that must be constructed through the builder.
const FLAT_OPTIONS_TYPES: &[&str] = &["SimConfig", "ServiceConfig"];

/// Path-derived context for one file.
struct FileContext<'a> {
    path: &'a str,
    in_tests_dir: bool,
    in_benches_dir: bool,
    is_bin: bool,
}

impl<'a> FileContext<'a> {
    fn new(path: &'a str) -> Self {
        let in_tests_dir = path.starts_with("tests/") || path.contains("/tests/");
        let in_benches_dir = path.starts_with("benches/") || path.contains("/benches/");
        let is_bin = path.contains("/src/bin/") || path.ends_with("src/main.rs");
        FileContext {
            path,
            in_tests_dir,
            in_benches_dir,
            is_bin,
        }
    }

    fn is_library_src(&self) -> bool {
        !self.in_tests_dir
            && !self.in_benches_dir
            && !self.is_bin
            && (self.path.contains("/src/") || self.path.starts_with("src/"))
    }
}

/// An inclusive line range.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Span {
    pub(crate) start: usize,
    pub(crate) end: usize,
}

impl Span {
    fn contains(&self, line: usize) -> bool {
        (self.start..=self.end).contains(&line)
    }
}

pub(crate) fn in_spans(spans: &[Span], line: usize) -> bool {
    spans.iter().any(|s| s.contains(line))
}

/// One lexed file inside the analysis pipeline.
pub(crate) struct FileUnit {
    pub(crate) rel_path: String,
    pub(crate) lexed: Lexed,
    pub(crate) tests: Vec<Span>,
    pub(crate) pragmas: Pragmas,
}

/// Wall-clock read for the analyzer's own per-rule `--stats`; the one
/// sanctioned self-timing site in this crate.
fn stat_clock() -> std::time::Instant {
    std::time::Instant::now() // lint: allow(wall-clock) — analyzer self-timing for --stats; no simulated result depends on it
}

/// Per-rule wall-clock accumulator.
#[derive(Default)]
struct Timer {
    nanos: BTreeMap<&'static str, u128>,
}

impl Timer {
    fn add(&mut self, rule: &'static str, since: std::time::Instant) {
        *self.nanos.entry(rule).or_insert(0) += since.elapsed().as_nanos();
    }

    fn get(&self, rule: &str) -> u128 {
        self.nanos.get(rule).copied().unwrap_or(0)
    }
}

/// Analyzes a corpus of source units with both passes and returns the
/// pragma-filtered findings plus per-rule stats.
pub fn analyze_units(units: &[SourceUnit]) -> AnalysisReport {
    let mut timer = Timer::default();

    let mut files: Vec<FileUnit> = units
        .iter()
        .map(|u| {
            let lexed = lex(&u.source);
            let tests = test_spans(&lexed.tokens);
            let pragmas = pragma::collect(&lexed.comments);
            FileUnit {
                rel_path: u.rel_path.clone(),
                lexed,
                tests,
                pragmas,
            }
        })
        .collect();
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));

    // Pass 1a: per-file rules.
    let mut raw: Vec<Finding> = Vec::new();
    for file in &files {
        let ctx = FileContext::new(&file.rel_path);
        let tokens = &file.lexed.tokens;
        let tests = &file.tests;
        let mergeable = mergeable_impl_spans(tokens);

        let t0 = stat_clock();
        check_hash_iter(&ctx, tokens, tests, &mut raw);
        timer.add("hash-iter", t0);
        let t0 = stat_clock();
        check_wall_clock(&ctx, tokens, tests, &mut raw);
        timer.add("wall-clock", t0);
        let t0 = stat_clock();
        check_ambient_rng(&ctx, tokens, &mut raw);
        timer.add("ambient-rng", t0);
        let t0 = stat_clock();
        check_lossy_cast(&ctx, tokens, tests, &mergeable, &mut raw);
        timer.add("lossy-cast", t0);
        let t0 = stat_clock();
        check_panic_policy(&ctx, tokens, tests, &mut raw);
        timer.add("panic-policy", t0);
        let t0 = stat_clock();
        check_bench_flags(&ctx, tokens, &mut raw);
        timer.add("bench-flags", t0);
        let t0 = stat_clock();
        check_flat_options(&ctx, tokens, tests, &mut raw);
        timer.add("flat-options", t0);
    }

    // Pass 1b: the symbol index.
    let t0 = stat_clock();
    let refs: Vec<(&str, &Lexed)> = files
        .iter()
        .map(|f| (f.rel_path.as_str(), &f.lexed))
        .collect();
    let index = SymbolIndex::build(&refs);
    timer.add("symbol-index", t0);

    // Pass 2: cross-crate semantic rules.
    let t0 = stat_clock();
    semantic::check_fast_ref_twin(&index, &mut raw);
    timer.add("fast-ref-twin", t0);
    let t0 = stat_clock();
    semantic::check_mergeable_coverage(&index, &mut raw);
    timer.add("mergeable-coverage", t0);
    let t0 = stat_clock();
    semantic::check_unit_mixing(&files, &mut raw);
    timer.add("unit-mixing", t0);
    let t0 = stat_clock();
    semantic::check_counter_overflow(&files, &index, &mut raw);
    timer.add("counter-overflow-policy", t0);

    // Pragma filtering with usage tracking, then the dead-pragma audit.
    let t0 = stat_clock();
    let by_path: BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.rel_path.as_str(), i))
        .collect();
    let mut used: Vec<Vec<bool>> = files
        .iter()
        .map(|f| vec![false; f.pragmas.pragmas.len()])
        .collect();
    let mut out: Vec<Finding> = Vec::new();
    for f in raw {
        if let Some(&fi) = by_path.get(f.path.as_str()) {
            if let Some(pi) = files[fi].pragmas.covering(f.rule, f.line) {
                used[fi][pi] = true;
                continue;
            }
        }
        out.push(f);
    }
    // A well-formed pragma that suppressed nothing is dead. Dead-pragma
    // findings are themselves suppressible (one level — an unused
    // `allow(dead-pragma)` is reported unconditionally, so the audit
    // cannot regress into a fixpoint).
    for (fi, file) in files.iter().enumerate() {
        for pi in 0..file.pragmas.pragmas.len() {
            let p = &file.pragmas.pragmas[pi];
            if used[fi][pi] || p.rule == "dead-pragma" {
                continue;
            }
            if let Some(pj) = file.pragmas.covering("dead-pragma", p.line) {
                used[fi][pj] = true;
                continue;
            }
            out.push(Finding {
                rule: "dead-pragma",
                path: file.rel_path.clone(),
                line: p.line,
                col: p.col,
                message: format!(
                    "pragma `allow({})` suppresses nothing; the violation it \
                     justified is gone — delete the pragma or restore its \
                     purpose",
                    p.rule
                ),
            });
        }
    }
    for (fi, file) in files.iter().enumerate() {
        for (pi, p) in file.pragmas.pragmas.iter().enumerate() {
            if !used[fi][pi] && p.rule == "dead-pragma" {
                out.push(Finding {
                    rule: "dead-pragma",
                    path: file.rel_path.clone(),
                    line: p.line,
                    col: p.col,
                    message: "pragma `allow(dead-pragma)` suppresses nothing; \
                              delete it"
                        .to_string(),
                });
            }
        }
    }
    timer.add("dead-pragma", t0);

    // Malformed pragmas are findings themselves and cannot be allowed.
    for file in &files {
        for e in &file.pragmas.errors {
            out.push(Finding {
                rule: "pragma",
                path: file.rel_path.clone(),
                line: e.line,
                col: 1,
                message: e.message.clone(),
            });
        }
    }

    out.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));

    let count = |rule: &str| out.iter().filter(|f| f.rule == rule).count();
    let mut stats = vec![RuleStat {
        rule: "symbol-index",
        findings: 0,
        nanos: timer.get("symbol-index"),
    }];
    for r in RULES {
        stats.push(RuleStat {
            rule: r.name,
            findings: count(r.name),
            nanos: timer.get(r.name),
        });
    }
    stats.push(RuleStat {
        rule: "pragma",
        findings: count("pragma"),
        nanos: 0,
    });

    AnalysisReport {
        findings: out,
        stats,
        files: files.len(),
    }
}

/// Analyzes one file in isolation (single-unit corpus) and returns its
/// findings, pragma-filtered and sorted.
pub fn analyze(rel_path: &str, source: &str) -> Vec<Finding> {
    analyze_units(&[SourceUnit {
        rel_path: rel_path.to_string(),
        source: source.to_string(),
    }])
    .findings
}

// ---------------------------------------------------------------------------
// Span computation.
// ---------------------------------------------------------------------------

/// Index just past an attribute starting at `i` (which must be `#`).
pub(crate) fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return i + 1;
    }
    let mut depth = 0usize;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// Whether the tokens at `i` start a `#[cfg(test)]` or `#[test]` attribute.
fn is_test_attr(tokens: &[Token], i: usize) -> bool {
    let ident = |k: usize, s: &str| tokens.get(k).is_some_and(|t| t.is_ident(s));
    let punct = |k: usize, c: char| tokens.get(k).is_some_and(|t| t.is_punct(c));
    if !punct(i, '#') || !punct(i + 1, '[') {
        return false;
    }
    // #[test]
    if ident(i + 2, "test") && punct(i + 3, ']') {
        return true;
    }
    // #[cfg(test)]
    ident(i + 2, "cfg")
        && punct(i + 3, '(')
        && ident(i + 4, "test")
        && punct(i + 5, ')')
        && punct(i + 6, ']')
}

/// Index of the matching `}` for the `{` at `open`, if any.
pub(crate) fn brace_match(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Index of the token ending the item starting at `j` (its closing `}` or
/// terminating `;`).
pub(crate) fn item_end(tokens: &[Token], j: usize) -> usize {
    let mut k = j;
    while let Some(t) = tokens.get(k) {
        if t.is_punct('{') {
            return brace_match(tokens, k).unwrap_or(tokens.len().saturating_sub(1));
        }
        if t.is_punct(';') {
            return k;
        }
        k += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Line spans of `#[cfg(test)]` / `#[test]` items.
pub(crate) fn test_spans(tokens: &[Token]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_test_attr(tokens, i) {
            let start = tokens[i].line;
            // Skip this attribute plus any stacked ones on the same item.
            let mut j = skip_attr(tokens, i);
            while tokens.get(j).is_some_and(|t| t.is_punct('#'))
                && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
            {
                j = skip_attr(tokens, j);
            }
            let end_idx = item_end(tokens, j);
            let end = tokens.get(end_idx).map_or(usize::MAX, |t| t.line);
            spans.push(Span { start, end });
            i = end_idx + 1;
        } else {
            i += 1;
        }
    }
    spans
}

/// Line spans of `impl ... Mergeable ... { ... }` blocks.
fn mergeable_impl_spans(tokens: &[Token]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("impl") {
            let mut j = i + 1;
            let mut has_mergeable = false;
            while let Some(t) = tokens.get(j) {
                if t.is_punct('{') || t.is_punct(';') {
                    break;
                }
                if t.is_ident("Mergeable") {
                    has_mergeable = true;
                }
                j += 1;
            }
            if has_mergeable && tokens.get(j).is_some_and(|t| t.is_punct('{')) {
                if let Some(close) = brace_match(tokens, j) {
                    spans.push(Span {
                        start: tokens[i].line,
                        end: tokens[close].line,
                    });
                    i = close + 1;
                    continue;
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    spans
}

// ---------------------------------------------------------------------------
// Rule checks.
// ---------------------------------------------------------------------------

fn push(
    findings: &mut Vec<Finding>,
    rule: &'static str,
    ctx: &FileContext<'_>,
    t: &Token,
    message: String,
) {
    findings.push(Finding {
        rule,
        path: ctx.path.to_string(),
        line: t.line,
        col: t.col,
        message,
    });
}

fn check_hash_iter(
    ctx: &FileContext<'_>,
    tokens: &[Token],
    tests: &[Span],
    findings: &mut Vec<Finding>,
) {
    if !DETERMINISM_SCOPE.iter().any(|p| ctx.path.starts_with(p)) {
        return;
    }
    for t in tokens {
        let Some(name) = t.ident() else { continue };
        if (name == "HashMap" || name == "HashSet") && !in_spans(tests, t.line) {
            push(
                findings,
                "hash-iter",
                ctx,
                t,
                format!(
                    "`{name}` iteration order is nondeterministic; use \
                     `BTree{}` or sorted iteration in determinism-critical code",
                    &name[4..]
                ),
            );
        }
    }
}

fn check_wall_clock(
    ctx: &FileContext<'_>,
    tokens: &[Token],
    tests: &[Span],
    findings: &mut Vec<Finding>,
) {
    if WALL_CLOCK_ALLOW.contains(&ctx.path) || ctx.in_tests_dir || ctx.in_benches_dir {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if in_spans(tests, t.line) {
            continue;
        }
        if t.is_ident("SystemTime") {
            push(
                findings,
                "wall-clock",
                ctx,
                t,
                "`SystemTime` is wall-clock state; simulated logic must be \
                 time-host-independent (sanctioned: `ladder_sim::wallclock`)"
                    .to_string(),
            );
        }
        if t.is_ident("Instant")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            push(
                findings,
                "wall-clock",
                ctx,
                t,
                "`Instant::now()` outside the sanctioned wall-clock module; \
                 use `ladder_sim::wallclock::Stopwatch`"
                    .to_string(),
            );
        }
    }
}

fn check_ambient_rng(ctx: &FileContext<'_>, tokens: &[Token], findings: &mut Vec<Finding>) {
    if RNG_ALLOW.contains(&ctx.path) {
        return;
    }
    for t in tokens {
        let Some(name) = t.ident() else { continue };
        if RNG_BANNED.contains(&name) {
            push(
                findings,
                "ambient-rng",
                ctx,
                t,
                format!(
                    "`{name}` is ambient randomness; every random decision \
                     must come from the seeded generators in \
                     `ladder_workloads::rng` / `ladder_wear::rng_util`"
                ),
            );
        }
    }
}

fn check_lossy_cast(
    ctx: &FileContext<'_>,
    tokens: &[Token],
    tests: &[Span],
    mergeable: &[Span],
    findings: &mut Vec<Finding>,
) {
    let whole_file = ctx.path.starts_with("crates/trace/src/");
    if !whole_file && mergeable.is_empty() {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("as") || in_spans(tests, t.line) {
            continue;
        }
        if !whole_file && !in_spans(mergeable, t.line) {
            continue;
        }
        let Some(target) = tokens.get(i + 1).and_then(|t| t.ident()) else {
            continue;
        };
        if NARROW_CASTS.contains(&target) {
            push(
                findings,
                "lossy-cast",
                ctx,
                t,
                format!(
                    "lossy `as {target}` cast in accounting code; counters \
                     fold in u64/f64 — use `try_into` or a checked helper"
                ),
            );
        }
    }
}

fn check_panic_policy(
    ctx: &FileContext<'_>,
    tokens: &[Token],
    tests: &[Span],
    findings: &mut Vec<Finding>,
) {
    if !ctx.is_library_src() || PANIC_EXEMPT.iter().any(|p| ctx.path.starts_with(p)) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if in_spans(tests, t.line) {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        let prev_dot = i > 0 && tokens[i - 1].is_punct('.');
        let next_open = tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        let next_bang = tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
        let hit = match name {
            "unwrap" | "expect" => prev_dot && next_open,
            "panic" => next_bang,
            _ => false,
        };
        if hit {
            let display = match name {
                "panic" => "panic!".to_string(),
                other => format!(".{other}()"),
            };
            push(
                findings,
                "panic-policy",
                ctx,
                t,
                format!(
                    "`{display}` in non-test library code; return an error, \
                     or document the invariant and allow with a pragma"
                ),
            );
        }
    }
}

fn check_bench_flags(ctx: &FileContext<'_>, tokens: &[Token], findings: &mut Vec<Finding>) {
    if !ctx.path.starts_with(BENCH_BIN_SCOPE) {
        return;
    }
    let has = |names: &[&str]| {
        tokens
            .iter()
            .any(|t| t.ident().is_some_and(|id| names.contains(&id)))
    };
    let requirements: [(&str, &[&str]); 4] = [
        ("--quick", &["BenchArgs"]),
        ("--jobs", &["BenchArgs"]),
        ("--topology", &["BenchArgs"]),
        ("--trace", &["emit_trace_if_requested"]),
    ];
    for (flag, helpers) in requirements {
        if !has(helpers) {
            findings.push(Finding {
                rule: "bench-flags",
                path: ctx.path.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "bench binary does not wire `{flag}` (call one of {})",
                    helpers.join(" / ")
                ),
            });
        }
    }
}

fn check_flat_options(
    ctx: &FileContext<'_>,
    tokens: &[Token],
    tests: &[Span],
    findings: &mut Vec<Finding>,
) {
    if FLAT_OPTIONS_ALLOW.contains(&ctx.path) || ctx.in_tests_dir {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if !FLAT_OPTIONS_TYPES.contains(&name)
            || in_spans(tests, t.line)
            || !tokens.get(i + 1).is_some_and(|t| t.is_punct('{'))
        {
            continue;
        }
        // `struct SimConfig {`, `impl SimConfig {`, `impl T for SimConfig {`
        // and `-> SimConfig {` are declarations or return types, not
        // literals.
        let declares = i > 0
            && (tokens[i - 1].is_punct('>')
                || ["struct", "impl", "for", "enum"]
                    .iter()
                    .any(|kw| tokens[i - 1].is_ident(kw)));
        if !declares {
            push(
                findings,
                "flat-options",
                ctx,
                t,
                format!(
                    "`{name} {{ .. }}` struct literal bypasses the builder; \
                     construct run configs with `SimConfig::builder()`"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
        analyze(path, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hash_map_fires_only_in_determinism_scope() {
        let src = "use std::collections::HashMap;";
        assert_eq!(rules_fired("crates/sim/src/x.rs", src), vec!["hash-iter"]);
        assert_eq!(rules_fired("crates/wear/src/x.rs", src), vec!["hash-iter"]);
        assert!(rules_fired("crates/xbar/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn g() { None::<u8>.unwrap(); }\n}\n";
        assert!(rules_fired("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_fn_attr_is_exempt() {
        let src = "#[test]\nfn t() { None::<u8>.unwrap(); }\npub fn f() { x.unwrap(); }\n";
        assert_eq!(
            rules_fired("crates/sim/src/x.rs", src),
            vec!["panic-policy"]
        );
    }

    #[test]
    fn wall_clock_allows_the_sanctioned_module() {
        let src = "pub fn now() { let _ = std::time::Instant::now(); }";
        assert_eq!(
            rules_fired("crates/sim/src/runner.rs", src),
            vec!["wall-clock"]
        );
        assert!(rules_fired("crates/sim/src/wallclock.rs", src).is_empty());
        assert!(rules_fired("crates/criterion/src/lib.rs", src).is_empty());
    }

    #[test]
    fn sim_time_instant_is_not_wall_clock() {
        // ladder_reram::Instant (simulated time) is fine; only ::now() is
        // the host clock.
        let src = "pub fn f(t: Instant) -> Instant { t }";
        assert!(rules_fired("crates/sim/src/system.rs", src).is_empty());
    }

    #[test]
    fn lossy_cast_in_trace_scope_and_mergeable_impls() {
        let narrow = "pub fn f(x: u64) -> u32 { x as u32 }";
        assert_eq!(
            rules_fired("crates/trace/src/metrics.rs", narrow),
            vec!["lossy-cast"]
        );
        assert!(rules_fired("crates/core/src/engine.rs", narrow).is_empty());
        let merge = "impl Mergeable for S {\n    fn merge_from(&mut self, o: &Self) { self.a = o.b as u16; }\n}\n";
        assert_eq!(
            rules_fired("crates/core/src/engine.rs", merge),
            vec!["lossy-cast"]
        );
        let widening = "pub fn f(x: u32) -> u64 { x as u64 }";
        assert!(rules_fired("crates/trace/src/metrics.rs", widening).is_empty());
    }

    #[test]
    fn panic_policy_skips_bins_tests_and_shims() {
        let src = "fn main() { x.unwrap(); panic!(\"boom\"); }";
        assert!(rules_fired("crates/sim/src/bin/tool.rs", src).is_empty());
        assert!(rules_fired("crates/sim/tests/t.rs", src).is_empty());
        assert!(rules_fired("crates/bench/benches/b.rs", src).is_empty());
        assert!(rules_fired("crates/proptest/src/lib.rs", src).is_empty());
        assert_eq!(
            rules_fired("crates/sim/src/lib.rs", "pub fn f() { x.expect(\"y\"); }"),
            vec!["panic-policy"]
        );
    }

    #[test]
    fn pragma_suppresses_and_malformed_pragma_reports() {
        let ok = "pub fn f() {\n    // lint: allow(panic-policy) — invariant: x is Some\n    x.unwrap();\n}\n";
        assert!(rules_fired("crates/sim/src/lib.rs", ok).is_empty());
        let unknown = "pub fn f() {\n    // lint: allow(panik) — typo\n    x.unwrap();\n}\n";
        // The malformed pragma (line 2) is itself a finding and does not
        // suppress the unwrap (line 3); findings sort by line.
        assert_eq!(
            rules_fired("crates/sim/src/lib.rs", unknown),
            vec!["pragma", "panic-policy"]
        );
    }

    #[test]
    fn dead_pragma_reports_and_can_be_suppressed() {
        // The pragma suppresses nothing: dead.
        let stale = "pub fn f() -> u64 {\n    // lint: allow(panic-policy) — was needed before the refactor\n    42\n}\n";
        let findings = analyze("crates/sim/src/lib.rs", stale);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "dead-pragma");
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[0].col, 5);

        // A live pragma is not dead.
        let live =
            "pub fn f() {\n    // lint: allow(panic-policy) — invariant\n    x.unwrap();\n}\n";
        assert!(rules_fired("crates/sim/src/lib.rs", live).is_empty());

        // Dead-pragma findings are themselves suppressible (one level).
        let waived = "pub fn f() -> u64 {\n    // lint: allow(dead-pragma) — kept while the refactor lands\n    // lint: allow(panic-policy) — to be re-justified\n    42\n}\n";
        assert!(rules_fired("crates/sim/src/lib.rs", waived).is_empty());

        // An unused allow(dead-pragma) is itself reported.
        let useless =
            "pub fn f() -> u64 {\n    // lint: allow(dead-pragma) — nothing here\n    42\n}\n";
        assert_eq!(
            rules_fired("crates/sim/src/lib.rs", useless),
            vec!["dead-pragma"]
        );
    }

    #[test]
    fn bench_flags_requires_the_shared_parser_and_trace() {
        let full = "use ladder_bench::BenchArgs;\nfn main() { let args = BenchArgs::parse(); args.emit_trace_if_requested(&args.cfg); }\n";
        assert!(rules_fired("crates/bench/src/bin/x.rs", full).is_empty());
        let missing_trace =
            "use ladder_bench::BenchArgs;\nfn main() { let _ = BenchArgs::parse(); }\n";
        let fired = analyze("crates/bench/src/bin/x.rs", missing_trace);
        assert_eq!(fired.len(), 1);
        assert!(fired[0].message.contains("--trace"), "{}", fired[0].message);
        let no_parser = "fn main() { emit_trace_if_requested(); }\n";
        let fired = analyze("crates/bench/src/bin/x.rs", no_parser);
        assert_eq!(fired.len(), 3, "{fired:?}");
        assert!(fired.iter().all(|f| f.message.contains("BenchArgs")));
    }

    #[test]
    fn flat_options_forbids_literals_outside_the_builder_module() {
        let literal = "pub fn f() -> SimConfig {\n    SimConfig { trace: true }\n}\n";
        assert_eq!(
            rules_fired("crates/sim/src/runner.rs", literal),
            vec!["flat-options"]
        );
        assert_eq!(
            rules_fired("crates/bench/src/lib.rs", literal),
            vec!["flat-options"]
        );
        // The builder modules themselves and integration tests are exempt.
        assert!(rules_fired("crates/sim/src/config.rs", literal).is_empty());
        assert!(rules_fired("crates/sim/src/service.rs", literal).is_empty());
        assert!(rules_fired("tests/golden_trace.rs", literal).is_empty());
    }

    #[test]
    fn flat_options_skips_declarations_and_builder_calls() {
        let decls = "pub struct SimConfig { pub trace: bool }\nimpl SimConfig {\n    fn f() {}\n}\nimpl Default for ServiceConfig {\n    fn default() -> Self { Self::new() }\n}\n";
        assert!(rules_fired("crates/sim/src/runner.rs", decls).is_empty());
        let builder =
            "pub fn f() -> SimConfig {\n    SimConfig::builder().trace(true).build()\n}\n";
        assert!(rules_fired("crates/sim/src/runner.rs", builder).is_empty());
        let service = "fn g() {\n    let o = ServiceConfig { load: 4.0 };\n}\n";
        assert_eq!(
            rules_fired("crates/memctrl/src/lib.rs", service),
            vec!["flat-options"]
        );
    }

    #[test]
    fn ambient_rng_fires_everywhere_but_the_sanctioned_modules() {
        let src = "pub fn f() { let r = thread_rng(); }";
        assert_eq!(
            rules_fired("crates/sim/tests/t.rs", src),
            vec!["ambient-rng"]
        );
        assert!(rules_fired("crates/workloads/src/rng.rs", src).is_empty());
        assert!(rules_fired("crates/wear/src/rng_util.rs", src).is_empty());
    }

    #[test]
    fn findings_carry_position() {
        let f = analyze("crates/sim/src/x.rs", "\n\nuse std::collections::HashMap;");
        assert_eq!((f[0].line, f[0].col), (3, 23));
        assert!(f[0].render().contains("crates/sim/src/x.rs:3:23"));
    }

    #[test]
    fn stats_cover_every_rule_and_count_findings() {
        let report = analyze_units(&[SourceUnit {
            rel_path: "crates/sim/src/x.rs".to_string(),
            source: "use std::collections::HashMap;".to_string(),
        }]);
        assert_eq!(report.files, 1);
        assert_eq!(report.stats.len(), RULES.len() + 2); // + index + pragma
        assert_eq!(report.stats[0].rule, "symbol-index");
        let hash = report
            .stats
            .iter()
            .find(|s| s.rule == "hash-iter")
            .expect("hash-iter stat");
        assert_eq!(hash.findings, 1);
    }
}
