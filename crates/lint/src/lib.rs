//! `ladder-lint`: the workspace's determinism & accounting conformance
//! analyzer.
//!
//! The reproduction's headline guarantees — bit-identical results at any
//! `--jobs`, golden-trace digests, exact trace↔stats reconciliation — are
//! structural properties: they hold because no code in the simulation,
//! fold, or export paths consults iteration-order-unstable containers, the
//! host clock, or ambient randomness, and because accounting arithmetic
//! never silently truncates. This crate enforces those invariants as
//! deny-by-default lint rules over a hand-rolled, string/char/comment-aware
//! Rust lexer (no `syn` — the workspace builds `--offline` with path-local
//! dependencies only).
//!
//! See DESIGN.md §11 for the rule catalog and the pragma grammar, and
//! [`rules::RULES`] for the machine-readable version.

pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod workspace;

pub use rules::{analyze, Finding, RuleInfo, RULES};

use std::io;
use std::path::Path;

/// Lints every source file under `root` and returns all findings, sorted
/// by path then position.
pub fn run_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut out = Vec::new();
    for file in workspace::discover(root)? {
        let source = std::fs::read_to_string(&file.abs_path)?;
        out.extend(analyze(&file.rel_path, &source));
    }
    Ok(out)
}

/// One fixture file's outcome.
#[derive(Debug)]
pub struct FixtureReport {
    /// Fixture path relative to the fixture directory.
    pub fixture: String,
    /// Virtual workspace path the snippet was analyzed under
    /// (`// path:` header, or the fixture path itself).
    pub virtual_path: String,
    /// Rule the fixture expects to fire (`// expect:` header), if any.
    pub expected: Option<String>,
    /// What actually fired.
    pub findings: Vec<Finding>,
}

impl FixtureReport {
    /// Whether the outcome matches the fixture's declared expectation:
    /// exactly one finding of the expected rule, or zero findings for a
    /// clean fixture.
    pub fn conforms(&self) -> bool {
        match &self.expected {
            Some(rule) => self.findings.len() == 1 && self.findings[0].rule == rule,
            None => self.findings.is_empty(),
        }
    }
}

/// Lints a fixture corpus. Each `.rs` file may carry header comments:
///
/// ```text
/// // path: crates/sim/src/example.rs
/// // expect: hash-iter
/// ```
///
/// `path:` sets the virtual workspace path the path-scoped rules see;
/// `expect:` declares the single rule the snippet must fire (absent for
/// clean fixtures).
pub fn run_fixtures(dir: &Path) -> io::Result<Vec<FixtureReport>> {
    let mut reports = Vec::new();
    let mut files = Vec::new();
    collect_fixture_files(dir, dir, &mut files)?;
    files.sort_by(|a, b| a.0.cmp(&b.0));
    for (fixture, abs) in files {
        let source = std::fs::read_to_string(&abs)?;
        let virtual_path = header(&source, "path:").unwrap_or_else(|| fixture.clone());
        let expected = header(&source, "expect:");
        let findings = analyze(&virtual_path, &source);
        reports.push(FixtureReport {
            fixture,
            virtual_path,
            expected,
            findings,
        });
    }
    Ok(reports)
}

fn collect_fixture_files(
    root: &Path,
    dir: &Path,
    out: &mut Vec<(String, std::path::PathBuf)>,
) -> io::Result<()> {
    let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_fixture_files(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Reads a `// <key> <value>` header from the leading comment lines.
fn header(source: &str, key: &str) -> Option<String> {
    for line in source.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Some(comment) = trimmed.strip_prefix("//") else {
            break; // headers only live above the first code line
        };
        if let Some(value) = comment.trim().strip_prefix(key) {
            return Some(value.trim().to_string());
        }
    }
    None
}

/// Renders findings as a JSON array (stable field order, no dependencies).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_is_well_formed() {
        let findings = vec![Finding {
            rule: "panic-policy",
            path: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col: 9,
            message: "a \"quoted\" message".to_string(),
        }];
        let json = to_json(&findings);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert_eq!(to_json(&[]), "[]");
    }

    #[test]
    fn header_parsing_stops_at_first_code_line() {
        let src = "// path: crates/sim/src/x.rs\n// expect: hash-iter\nfn main() {}\n// path: not/this.rs\n";
        assert_eq!(header(src, "path:").as_deref(), Some("crates/sim/src/x.rs"));
        assert_eq!(header(src, "expect:").as_deref(), Some("hash-iter"));
        assert_eq!(header("fn main() {}\n// path: x\n", "path:"), None);
    }
}
