//! `ladder-lint`: the workspace's determinism & accounting conformance
//! analyzer.
//!
//! The reproduction's headline guarantees — bit-identical results at any
//! `--jobs`, golden-trace digests, exact trace↔stats reconciliation — are
//! structural properties: they hold because no code in the simulation,
//! fold, or export paths consults iteration-order-unstable containers, the
//! host clock, or ambient randomness, and because accounting arithmetic
//! never silently truncates. This crate enforces those invariants as
//! deny-by-default lint rules over a hand-rolled, string/char/comment-aware
//! Rust lexer (no `syn` — the workspace builds `--offline` with path-local
//! dependencies only).
//!
//! Analysis is two-pass ([`rules::analyze_units`]): pass 1 runs the
//! per-file rules and builds a [`index::SymbolIndex`] over the whole
//! corpus; pass 2 runs the cross-crate semantic rules (fast/reference
//! twin discipline, `Mergeable` coverage, time-unit mixing, counter
//! overflow policy) against that index, and audits every allow-pragma
//! for liveness (`dead-pragma`).
//!
//! See DESIGN.md §11/§16 for the rule catalog and the pragma grammar, and
//! [`rules::RULES`] for the machine-readable version.

pub mod index;
pub mod lexer;
pub mod pragma;
pub mod rules;
pub(crate) mod semantic;
pub mod workspace;

pub use rules::{
    analyze, analyze_units, AnalysisReport, Finding, RuleInfo, RuleStat, SourceUnit, RULES,
};

use std::io;
use std::path::Path;

/// Lints every source file under `root` with both passes and returns the
/// full report (findings sorted by path then position, plus per-rule
/// stats).
pub fn run_workspace(root: &Path) -> io::Result<AnalysisReport> {
    let mut units = Vec::new();
    for file in workspace::discover(root)? {
        units.push(SourceUnit {
            source: std::fs::read_to_string(&file.abs_path)?,
            rel_path: file.rel_path,
        });
    }
    Ok(analyze_units(&units))
}

/// A fixture's declared expectation (`// expect:` header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expectation {
    /// Rule the fixture must fire.
    pub rule: String,
    /// Exact `line:col` the finding must anchor at, if declared.
    pub pos: Option<(usize, usize)>,
}

/// One fixture file's outcome.
#[derive(Debug)]
pub struct FixtureReport {
    /// Fixture path relative to the fixture directory.
    pub fixture: String,
    /// Virtual workspace path of the fixture's first unit
    /// (`// path:` header, or the fixture path itself).
    pub virtual_path: String,
    /// Rule (and optionally position) the fixture expects to fire
    /// (`// expect:` header), if any.
    pub expected: Option<Expectation>,
    /// What actually fired.
    pub findings: Vec<Finding>,
}

impl FixtureReport {
    /// Whether the outcome matches the fixture's declared expectation:
    /// exactly one finding of the expected rule (at the expected position,
    /// when one is declared), or zero findings for a clean fixture.
    pub fn conforms(&self) -> bool {
        match &self.expected {
            Some(e) => {
                self.findings.len() == 1
                    && self.findings[0].rule == e.rule
                    && e.pos.is_none_or(|(l, c)| {
                        self.findings[0].line == l && self.findings[0].col == c
                    })
            }
            None => self.findings.is_empty(),
        }
    }
}

/// Lints a fixture corpus. Each `.rs` file may carry header comments:
///
/// ```text
/// // path: crates/sim/src/example.rs
/// // expect: hash-iter @ 5:23
/// ```
///
/// `path:` sets the virtual workspace path the path-scoped rules see;
/// `expect:` declares the single rule the snippet must fire, optionally
/// pinned to an exact `line:col` (absent for clean fixtures).
///
/// For the cross-crate rules a fixture can fabricate a multi-file corpus
/// with `// file: <virtual path>` section markers: everything before the
/// first marker is the primary unit, each marker starts a new unit under
/// the given path. Later units keep fixture-absolute line numbers (they
/// are padded to their section's position), so `expect:` positions always
/// refer to lines of the fixture file itself.
pub fn run_fixtures(dir: &Path) -> io::Result<Vec<FixtureReport>> {
    let mut reports = Vec::new();
    let mut files = Vec::new();
    collect_fixture_files(dir, dir, &mut files)?;
    files.sort_by(|a, b| a.0.cmp(&b.0));
    for (fixture, abs) in files {
        let source = std::fs::read_to_string(&abs)?;
        reports.push(run_fixture_source(&fixture, &source));
    }
    Ok(reports)
}

/// Lints one fixture from its raw contents (exposed so tests can mutate a
/// fixture in memory and assert the corpus self-check catches the change).
pub fn run_fixture_source(fixture: &str, source: &str) -> FixtureReport {
    let virtual_path = header(source, "path:").unwrap_or_else(|| fixture.to_string());
    let expected = header(source, "expect:").map(|raw| parse_expectation(&raw));
    let units = split_units(&virtual_path, source);
    let findings = analyze_units(&units).findings;
    FixtureReport {
        fixture: fixture.to_string(),
        virtual_path,
        expected,
        findings,
    }
}

/// Parses `<rule>` or `<rule> @ <line>:<col>`.
fn parse_expectation(raw: &str) -> Expectation {
    if let Some((rule, pos)) = raw.split_once('@') {
        if let Some((l, c)) = pos.trim().split_once(':') {
            if let (Ok(l), Ok(c)) = (l.trim().parse(), c.trim().parse()) {
                return Expectation {
                    rule: rule.trim().to_string(),
                    pos: Some((l, c)),
                };
            }
        }
    }
    Expectation {
        rule: raw.trim().to_string(),
        pos: None,
    }
}

/// Splits a fixture into its virtual corpus at `// file:` markers. Each
/// later unit is padded with blank lines so token positions stay
/// fixture-absolute.
fn split_units(primary_path: &str, source: &str) -> Vec<SourceUnit> {
    let mut units = Vec::new();
    let mut path = primary_path.to_string();
    let mut body = String::new();
    let mut flushed_any = false;
    for (i, line) in source.lines().enumerate() {
        if let Some(marker) = line.trim().strip_prefix("// file:") {
            units.push(SourceUnit {
                rel_path: std::mem::replace(&mut path, marker.trim().to_string()),
                source: std::mem::take(&mut body),
            });
            flushed_any = true;
            // The next unit starts after the marker line; pad so its code
            // keeps fixture-absolute line numbers.
            body = "\n".repeat(i + 1);
            continue;
        }
        body.push_str(line);
        body.push('\n');
    }
    if !body.trim().is_empty() || !flushed_any {
        units.push(SourceUnit {
            rel_path: path,
            source: body,
        });
    }
    units
}

fn collect_fixture_files(
    root: &Path,
    dir: &Path,
    out: &mut Vec<(String, std::path::PathBuf)>,
) -> io::Result<()> {
    let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_fixture_files(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Reads a `// <key> <value>` header from the leading comment lines.
fn header(source: &str, key: &str) -> Option<String> {
    for line in source.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Some(comment) = trimmed.strip_prefix("//") else {
            break; // headers only live above the first code line
        };
        if let Some(value) = comment.trim().strip_prefix(key) {
            return Some(value.trim().to_string());
        }
    }
    None
}

/// Renders findings as a JSON array (stable field order, no dependencies).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Renders findings as a minimal SARIF 2.1.0 log (one run, the full rule
/// catalog as `tool.driver.rules`, one `result` per finding). The output
/// is byte-stable for a given finding list — no timestamps, no absolute
/// paths, object keys in fixed order.
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"ladder-lint\",\n");
    out.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            json_escape(r.name),
            json_escape(r.summary),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str("        {\n");
        out.push_str(&format!(
            "          \"ruleId\": \"{}\",\n",
            json_escape(f.rule)
        ));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{\"text\": \"{}\"}},\n",
            json_escape(&f.message)
        ));
        out.push_str(&format!(
            "          \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]\n",
            json_escape(&f.path),
            f.line,
            f.col
        ));
        out.push_str(&format!(
            "        }}{}\n",
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_is_well_formed() {
        let findings = vec![Finding {
            rule: "panic-policy",
            path: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col: 9,
            message: "a \"quoted\" message".to_string(),
        }];
        let json = to_json(&findings);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert_eq!(to_json(&[]), "[]");
    }

    #[test]
    fn header_parsing_stops_at_first_code_line() {
        let src = "// path: crates/sim/src/x.rs\n// expect: hash-iter\nfn main() {}\n// path: not/this.rs\n";
        assert_eq!(header(src, "path:").as_deref(), Some("crates/sim/src/x.rs"));
        assert_eq!(header(src, "expect:").as_deref(), Some("hash-iter"));
        assert_eq!(header("fn main() {}\n// path: x\n", "path:"), None);
    }

    #[test]
    fn expectation_grammar_accepts_rule_and_position() {
        assert_eq!(
            parse_expectation("hash-iter @ 5:23"),
            Expectation {
                rule: "hash-iter".to_string(),
                pos: Some((5, 23)),
            }
        );
        assert_eq!(
            parse_expectation("unit-mixing"),
            Expectation {
                rule: "unit-mixing".to_string(),
                pos: None,
            }
        );
    }

    #[test]
    fn split_units_preserves_fixture_absolute_lines() {
        let src = "// path: crates/a/src/lib.rs\npub fn a() {}\n// file: crates/b/src/lib.rs\npub fn b() {}\n";
        let units = split_units("crates/a/src/lib.rs", src);
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].rel_path, "crates/a/src/lib.rs");
        assert_eq!(units[1].rel_path, "crates/b/src/lib.rs");
        // `pub fn b` sits on fixture line 4; the padded unit must agree.
        let lexed = lexer::lex(&units[1].source);
        assert_eq!(lexed.tokens[0].line, 4);
    }

    #[test]
    fn single_file_fixture_is_one_unit() {
        let units = split_units("crates/a/src/lib.rs", "pub fn a() {}\n");
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].rel_path, "crates/a/src/lib.rs");
    }

    #[test]
    fn fixture_conformance_checks_position_when_declared() {
        let src = "// path: crates/sim/src/x.rs\n// expect: hash-iter @ 3:23\nuse std::collections::HashMap;\n";
        let report = run_fixture_source("f.rs", src);
        assert!(report.conforms(), "{:?}", report.findings);
        let wrong = "// path: crates/sim/src/x.rs\n// expect: hash-iter @ 9:9\nuse std::collections::HashMap;\n";
        assert!(!run_fixture_source("f.rs", wrong).conforms());
    }

    #[test]
    fn sarif_output_is_well_formed_and_stable() {
        let findings = vec![Finding {
            rule: "unit-mixing",
            path: "crates/sim/src/x.rs".to_string(),
            line: 7,
            col: 12,
            message: "mixing \"_ps\" and _ns".to_string(),
        }];
        let a = to_sarif(&findings);
        let b = to_sarif(&findings);
        assert_eq!(a, b);
        assert!(a.contains("\"version\": \"2.1.0\""));
        assert!(a.contains("\"ruleId\": \"unit-mixing\""));
        assert!(a.contains("\"startLine\": 7"));
        assert!(a.contains("\\\"_ps\\\""));
        // Every cataloged rule appears in the driver metadata.
        for r in RULES {
            assert!(a.contains(&format!("\"id\": \"{}\"", r.name)));
        }
    }
}
