//! CLI for `ladder-lint`.
//!
//! ```text
//! ladder-lint [--root DIR] [--json] [--list-rules] [--fixtures DIR]
//! ```
//!
//! Exit codes: 0 = clean, 1 = findings reported, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use ladder_lint::{run_fixtures, run_workspace, to_json, RULES};

const USAGE: &str = "\
ladder-lint — workspace determinism & accounting conformance analyzer

USAGE:
    ladder-lint [OPTIONS]

OPTIONS:
    --root DIR        workspace root to lint (default: .)
    --json            emit findings as a JSON array
    --fixtures DIR    lint a fixture corpus (virtual `// path:` headers)
                      instead of the workspace
    --list-rules      print the rule catalog and exit
    -h, --help        show this help
";

struct Options {
    root: PathBuf,
    json: bool,
    fixtures: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        json: false,
        fixtures: None,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let value = args.next().ok_or("--root needs a directory")?;
                opts.root = PathBuf::from(value);
            }
            "--json" => opts.json = true,
            "--fixtures" => {
                let value = args.next().ok_or("--fixtures needs a directory")?;
                opts.fixtures = Some(PathBuf::from(value));
            }
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in RULES {
            println!("{:<13} {}", rule.name, rule.summary);
            println!("{:<13}   scope: {}", "", rule.scope);
        }
        return ExitCode::SUCCESS;
    }

    let findings = if let Some(dir) = &opts.fixtures {
        match run_fixtures(dir) {
            Ok(reports) => reports.into_iter().flat_map(|r| r.findings).collect(),
            Err(e) => {
                eprintln!("error: cannot lint fixtures {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
    } else {
        match run_workspace(&opts.root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: cannot lint {}: {e}", opts.root.display());
                return ExitCode::from(2);
            }
        }
    };

    if opts.json {
        println!("{}", to_json(&findings));
    } else {
        for f in &findings {
            println!("{}", f.render());
        }
        if findings.is_empty() {
            eprintln!("ladder-lint: clean");
        } else {
            eprintln!(
                "ladder-lint: {} finding{} (suppress with `// lint: allow(<rule>) — <why>`)",
                findings.len(),
                if findings.len() == 1 { "" } else { "s" }
            );
        }
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
