//! CLI for `ladder-lint`.
//!
//! ```text
//! ladder-lint [--root DIR] [--json | --sarif] [--stats] [--list-rules]
//!             [--fixtures DIR]
//! ```
//!
//! Exit codes (stable, asserted by the test suite):
//!   0 — analysis ran and found nothing
//!   1 — analysis ran and reported findings
//!   2 — usage or I/O error (bad flag, conflicting output modes,
//!       unreadable root/fixtures directory)

use std::path::PathBuf;
use std::process::ExitCode;

use ladder_lint::{run_fixtures, run_workspace, to_json, to_sarif, Finding, RuleStat, RULES};

const USAGE: &str = "\
ladder-lint — workspace determinism & accounting conformance analyzer

USAGE:
    ladder-lint [OPTIONS]

OPTIONS:
    --root DIR        workspace root to lint (default: .)
    --json            emit findings as a JSON array
    --sarif           emit findings as a SARIF 2.1.0 log
    --stats           print a per-rule findings/time table to stderr
    --fixtures DIR    lint a fixture corpus (virtual `// path:` headers)
                      instead of the workspace
    --list-rules      print the rule catalog and exit
    -h, --help        show this help

EXIT CODES:
    0    clean (no findings)
    1    findings reported
    2    usage or I/O error
";

struct Options {
    root: PathBuf,
    json: bool,
    sarif: bool,
    stats: bool,
    fixtures: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        json: false,
        sarif: false,
        stats: false,
        fixtures: None,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let value = args.next().ok_or("--root needs a directory")?;
                opts.root = PathBuf::from(value);
            }
            "--json" => opts.json = true,
            "--sarif" => opts.sarif = true,
            "--stats" => opts.stats = true,
            "--fixtures" => {
                let value = args.next().ok_or("--fixtures needs a directory")?;
                opts.fixtures = Some(PathBuf::from(value));
            }
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.json && opts.sarif {
        return Err("--json and --sarif are mutually exclusive".to_string());
    }
    Ok(opts)
}

fn print_stats(files: usize, stats: &[RuleStat]) {
    eprintln!("ladder-lint: analyzed {files} files");
    eprintln!("{:<24} {:>8} {:>12}", "rule", "findings", "time");
    for s in stats {
        eprintln!(
            "{:<24} {:>8} {:>9}.{:03} ms",
            s.rule,
            s.findings,
            s.nanos / 1_000_000,
            (s.nanos / 1_000) % 1_000
        );
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in RULES {
            println!("{:<24} {}", rule.name, rule.summary);
            println!("{:<24}   scope: {}", "", rule.scope);
        }
        return ExitCode::SUCCESS;
    }

    let findings: Vec<Finding> = if let Some(dir) = &opts.fixtures {
        match run_fixtures(dir) {
            Ok(reports) => reports.into_iter().flat_map(|r| r.findings).collect(),
            Err(e) => {
                eprintln!("error: cannot lint fixtures {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
    } else {
        match run_workspace(&opts.root) {
            Ok(report) => {
                if opts.stats {
                    print_stats(report.files, &report.stats);
                }
                report.findings
            }
            Err(e) => {
                eprintln!("error: cannot lint {}: {e}", opts.root.display());
                return ExitCode::from(2);
            }
        }
    };

    if opts.json {
        println!("{}", to_json(&findings));
    } else if opts.sarif {
        print!("{}", to_sarif(&findings));
    } else {
        for f in &findings {
            println!("{}", f.render());
        }
        if findings.is_empty() {
            eprintln!("ladder-lint: clean");
        } else {
            eprintln!(
                "ladder-lint: {} finding{} (suppress with `// lint: allow(<rule>) — <why>`)",
                findings.len(),
                if findings.len() == 1 { "" } else { "s" }
            );
        }
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
