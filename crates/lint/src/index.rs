//! Pass 1 of the two-pass analyzer: a lightweight workspace symbol index.
//!
//! The semantic rules ([`crate::semantic`]) need to see *across* files —
//! does a reference kernel have a fast twin somewhere, is a `*Stats`
//! struct folded anywhere — so this module walks every file's token
//! stream once and records just enough structure for those questions:
//! functions (with a normalized signature, module path and surrounding
//! `impl`), structs with their typed fields, enums with their variants,
//! `impl Trait for Type` headers, and the set of identifiers each file
//! mentions. It is *not* a parser: it recognizes item heads by keyword
//! and matches braces, which is sound for the workspace's rustfmt'd,
//! compiling code and keeps the analyzer dependency-free (no `syn`).
//!
//! Determinism: the index is a pure function of the *set* of files —
//! inputs are sorted by path before the walk, so a shuffled file list
//! produces a bit-identical index (property-tested in
//! `tests/index_order.rs`).

use crate::lexer::{lex, Lexed, Token, TokenKind};
use crate::rules::{in_spans, test_spans, SourceUnit, Span};
use std::collections::{BTreeMap, BTreeSet};

/// One indexed `fn` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// 1-based line of the function's name token.
    pub line: usize,
    /// 1-based column of the function's name token.
    pub col: usize,
    /// The function's name.
    pub name: String,
    /// Normalized signature: the parameter list and return type as a
    /// space-joined token string with literals collapsed (`N`/`S`/`C`),
    /// so twins compare equal regardless of formatting.
    pub sig: String,
    /// Enclosing `mod` names, outermost first (file-relative).
    pub modules: Vec<String>,
    /// The `impl` target type, when defined inside an `impl` block.
    pub impl_type: Option<String>,
    /// The `impl` trait (last path segment), for trait impls.
    pub trait_name: Option<String>,
    /// Whether the item is `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Token-index range of the body braces in the file's token stream
    /// (`open..=close`), `None` for bodyless declarations.
    pub body: Option<(usize, usize)>,
}

/// One indexed `struct` with named fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructItem {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// 1-based line of the struct's name token.
    pub line: usize,
    /// 1-based column of the struct's name token.
    pub col: usize,
    /// The struct's name.
    pub name: String,
    /// `(field, normalized type)` pairs, in declaration order. Tuple and
    /// unit structs index with no fields.
    pub fields: Vec<(String, String)>,
}

/// One indexed `enum`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumItem {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// 1-based line of the enum's name token.
    pub line: usize,
    /// The enum's name.
    pub name: String,
    /// Variant names with their `(line, col)`.
    pub variants: Vec<(String, usize, usize)>,
}

/// One indexed `impl` header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplItem {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// The implemented trait's last path segment (`ladder_trace::Mergeable`
    /// indexes as `Mergeable`), `None` for inherent impls.
    pub trait_name: Option<String>,
    /// The target type's last path segment.
    pub type_name: String,
}

/// The cross-file symbol index (pass 1 output).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct SymbolIndex {
    /// Every non-test `fn`, in (file, position) order.
    pub fns: Vec<FnItem>,
    /// Every non-test `struct`, in (file, position) order.
    pub structs: Vec<StructItem>,
    /// Every non-test `enum`, in (file, position) order.
    pub enums: Vec<EnumItem>,
    /// Every non-test `impl` header, in (file, position) order.
    pub impls: Vec<ImplItem>,
    /// All identifiers each file mentions anywhere (including test spans —
    /// equivalence tests are the point), keyed by path.
    pub file_idents: BTreeMap<String, BTreeSet<String>>,
}

impl SymbolIndex {
    /// Builds the index over already-lexed files. Input order is
    /// irrelevant: files are visited in sorted path order.
    pub fn build(files: &[(&str, &Lexed)]) -> SymbolIndex {
        let mut sorted: Vec<&(&str, &Lexed)> = files.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(b.0));
        let mut index = SymbolIndex::default();
        for (path, lexed) in sorted {
            let tests = test_spans(&lexed.tokens);
            let mut walker = Walker {
                file: path,
                tokens: &lexed.tokens,
                tests: &tests,
                index: &mut index,
            };
            walker.walk(0, lexed.tokens.len(), &mut Vec::new(), None);
            let idents = lexed
                .tokens
                .iter()
                .filter_map(|t| t.ident().map(str::to_string))
                .collect();
            index.file_idents.insert(path.to_string(), idents);
        }
        index
    }

    /// Convenience: lexes `units` and builds the index (used by tests and
    /// the fixture pipeline).
    pub fn from_units(units: &[SourceUnit]) -> SymbolIndex {
        let lexed: Vec<(String, Lexed)> = units
            .iter()
            .map(|u| (u.rel_path.clone(), lex(&u.source)))
            .collect();
        let refs: Vec<(&str, &Lexed)> = lexed.iter().map(|(p, l)| (p.as_str(), l)).collect();
        SymbolIndex::build(&refs)
    }

    /// The struct named `name`, if indexed.
    pub fn struct_named(&self, name: &str) -> Option<&StructItem> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Whether some `impl <trait_name> for <type_name>` exists.
    pub fn has_trait_impl(&self, trait_name: &str, type_name: &str) -> bool {
        self.impls
            .iter()
            .any(|i| i.trait_name.as_deref() == Some(trait_name) && i.type_name == type_name)
    }
}

/// The `impl` context a function is being indexed under.
struct ImplCtx {
    type_name: String,
    trait_name: Option<String>,
}

struct Walker<'a> {
    file: &'a str,
    tokens: &'a [Token],
    tests: &'a [Span],
    index: &'a mut SymbolIndex,
}

impl Walker<'_> {
    /// Walks `tokens[start..end]` recording items, recursing into `mod`
    /// bodies and `impl` blocks. `mods` is the enclosing module stack.
    fn walk(&mut self, start: usize, end: usize, mods: &mut Vec<String>, imp: Option<&ImplCtx>) {
        let mut i = start;
        while i < end {
            let t = &self.tokens[i];
            if t.is_punct('#') && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
                i = crate::rules::skip_attr(self.tokens, i);
                continue;
            }
            match t.ident() {
                Some("mod") => i = self.scan_mod(i, end, mods, imp),
                Some("impl") => i = self.scan_impl(i, end, mods),
                Some("fn") => i = self.scan_fn(i, end, mods, imp),
                Some("struct") => i = self.scan_struct(i, end),
                Some("enum") => i = self.scan_enum(i, end),
                _ => i += 1,
            }
        }
    }

    fn in_test(&self, line: usize) -> bool {
        in_spans(self.tests, line)
    }

    /// `mod name { ... }` — recurses with the module pushed; `mod name;`
    /// declarations are skipped.
    fn scan_mod(
        &mut self,
        i: usize,
        end: usize,
        mods: &mut Vec<String>,
        imp: Option<&ImplCtx>,
    ) -> usize {
        let Some(name) = self.tokens.get(i + 1).and_then(|t| t.ident()) else {
            return i + 1;
        };
        let Some(open) = self.find_block_open(i + 2, end) else {
            return i + 2;
        };
        let Some(close) = crate::rules::brace_match(self.tokens, open) else {
            return open + 1;
        };
        mods.push(name.to_string());
        self.walk(open + 1, close, mods, imp);
        mods.pop();
        close + 1
    }

    /// `impl<G> [Trait for] Type [where ...] { ... }`.
    fn scan_impl(&mut self, i: usize, end: usize, mods: &mut Vec<String>) -> usize {
        let line = self.tokens[i].line;
        let mut j = i + 1;
        if self.tokens.get(j).is_some_and(|t| t.is_punct('<')) {
            j = self.skip_angles(j, end);
        }
        // Collect path-segment idents at angle depth 0 until `{`/`;`,
        // noting where a top-level `for` splits trait from type.
        let mut segments: Vec<&str> = Vec::new();
        let mut trait_end: Option<usize> = None; // index into `segments`
        let mut angle = 0usize;
        let mut open = None;
        while j < end {
            let t = &self.tokens[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && angle > 0 {
                angle -= 1;
            } else if t.is_punct('-') && self.tokens.get(j + 1).is_some_and(|t| t.is_punct('>')) {
                j += 2; // `->` inside an fn-trait bound
                continue;
            } else if angle == 0 {
                if t.is_punct('{') {
                    open = Some(j);
                    break;
                }
                if t.is_punct(';') {
                    return j + 1;
                }
                match t.ident() {
                    Some("for") => trait_end = Some(segments.len()),
                    Some("where") => {
                        // Type name is settled; scan on for the `{` only.
                        while j < end && !self.tokens[j].is_punct('{') {
                            j += 1;
                        }
                        continue;
                    }
                    Some(id) => segments.push(id),
                    None => {}
                }
            }
            j += 1;
        }
        let Some(open) = open else { return j + 1 };
        let Some(close) = crate::rules::brace_match(self.tokens, open) else {
            return open + 1;
        };
        let (trait_name, type_name) = match trait_end {
            Some(k) => (
                segments[..k].last().map(|s| s.to_string()),
                segments[k..].last().map(|s| s.to_string()),
            ),
            None => (None, segments.last().map(|s| s.to_string())),
        };
        let Some(type_name) = type_name else {
            return close + 1;
        };
        if !self.in_test(line) {
            self.index.impls.push(ImplItem {
                file: self.file.to_string(),
                line,
                trait_name: trait_name.clone(),
                type_name: type_name.clone(),
            });
        }
        let ctx = ImplCtx {
            type_name,
            trait_name,
        };
        self.walk(open + 1, close, mods, Some(&ctx));
        close + 1
    }

    /// `fn name<G>(params) -> Ret [where ...] { body }`.
    fn scan_fn(&mut self, i: usize, end: usize, mods: &[String], imp: Option<&ImplCtx>) -> usize {
        let Some(name_tok) = self.tokens.get(i + 1) else {
            return i + 1;
        };
        let Some(name) = name_tok.ident() else {
            return i + 1;
        };
        let mut j = i + 2;
        if self.tokens.get(j).is_some_and(|t| t.is_punct('<')) {
            j = self.skip_angles(j, end);
        }
        if !self.tokens.get(j).is_some_and(|t| t.is_punct('(')) {
            return i + 2;
        }
        // Parameter list: match parens.
        let params_open = j;
        let mut depth = 0usize;
        let mut params_close = None;
        while j < end {
            let t = &self.tokens[j];
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    params_close = Some(j);
                    break;
                }
            }
            j += 1;
        }
        let Some(params_close) = params_close else {
            return j;
        };
        // Return type runs to the body `{`, a `;`, or a `where` clause.
        let mut k = params_close + 1;
        let mut ret_end = k;
        let mut body = None;
        let mut item_after = end;
        while k < end {
            let t = &self.tokens[k];
            if t.is_punct('<') {
                k = self.skip_angles(k, end);
                ret_end = k;
                continue;
            }
            if t.is_ident("where") {
                while k < end && !self.tokens[k].is_punct('{') && !self.tokens[k].is_punct(';') {
                    k += 1;
                }
                continue;
            }
            if t.is_punct('{') {
                let close = crate::rules::brace_match(self.tokens, k);
                body = close.map(|c| (k, c));
                item_after = close.map_or(end, |c| c + 1);
                break;
            }
            if t.is_punct(';') {
                item_after = k + 1;
                break;
            }
            k += 1;
            ret_end = k;
        }
        if !self.in_test(name_tok.line) {
            let sig = self.normalize(params_open, params_close + 1)
                + &self.normalize(params_close + 1, ret_end);
            self.index.fns.push(FnItem {
                file: self.file.to_string(),
                line: name_tok.line,
                col: name_tok.col,
                name: name.to_string(),
                sig: sig.trim().to_string(),
                modules: mods.to_vec(),
                impl_type: imp.map(|c| c.type_name.clone()),
                trait_name: imp.and_then(|c| c.trait_name.clone()),
                is_pub: self.is_pub_before(i),
                body,
            });
        }
        item_after
    }

    /// `struct Name<G> { fields }` / tuple / unit struct.
    fn scan_struct(&mut self, i: usize, end: usize) -> usize {
        let Some(name_tok) = self.tokens.get(i + 1) else {
            return i + 1;
        };
        let Some(name) = name_tok.ident() else {
            return i + 1;
        };
        let mut j = i + 2;
        if self.tokens.get(j).is_some_and(|t| t.is_punct('<')) {
            j = self.skip_angles(j, end);
        }
        // `where` clauses may precede the brace.
        while j < end
            && !self.tokens[j].is_punct('{')
            && !self.tokens[j].is_punct('(')
            && !self.tokens[j].is_punct(';')
        {
            j += 1;
        }
        let mut fields = Vec::new();
        let item_after = match self.tokens.get(j) {
            Some(t) if t.is_punct('{') => {
                let close = crate::rules::brace_match(self.tokens, j).unwrap_or(end - 1);
                self.scan_fields(j + 1, close, &mut fields);
                close + 1
            }
            Some(t) if t.is_punct('(') => crate::rules::item_end(self.tokens, j) + 1,
            _ => j + 1,
        };
        if !self.in_test(name_tok.line) {
            self.index.structs.push(StructItem {
                file: self.file.to_string(),
                line: name_tok.line,
                col: name_tok.col,
                name: name.to_string(),
                fields,
            });
        }
        item_after
    }

    /// Named fields between a struct's braces: `[pub] name: Type,`.
    fn scan_fields(&mut self, start: usize, end: usize, out: &mut Vec<(String, String)>) {
        let mut i = start;
        while i < end {
            let t = &self.tokens[i];
            if t.is_punct('#') && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
                i = crate::rules::skip_attr(self.tokens, i);
                continue;
            }
            if t.is_ident("pub") {
                i += 1;
                if self.tokens.get(i).is_some_and(|t| t.is_punct('(')) {
                    // `pub(crate)` and friends.
                    while i < end && !self.tokens[i].is_punct(')') {
                        i += 1;
                    }
                    i += 1;
                }
                continue;
            }
            let Some(field) = t.ident() else {
                i += 1;
                continue;
            };
            if !self.tokens.get(i + 1).is_some_and(|t| t.is_punct(':')) {
                i += 1;
                continue;
            }
            // Type runs to the next comma at bracket depth 0.
            let ty_start = i + 2;
            let mut j = ty_start;
            let (mut angle, mut paren, mut square) = (0i32, 0i32, 0i32);
            while j < end {
                let t = &self.tokens[j];
                if t.is_punct(',') && angle == 0 && paren == 0 && square == 0 {
                    break;
                }
                match () {
                    _ if t.is_punct('<') => angle += 1,
                    _ if t.is_punct('>') => angle -= 1,
                    _ if t.is_punct('(') => paren += 1,
                    _ if t.is_punct(')') => paren -= 1,
                    _ if t.is_punct('[') => square += 1,
                    _ if t.is_punct(']') => square -= 1,
                    _ => {}
                }
                j += 1;
            }
            out.push((field.to_string(), self.normalize(ty_start, j)));
            i = j + 1;
        }
    }

    /// `enum Name<G> { Variant, Variant(..), Variant { .. } }`.
    fn scan_enum(&mut self, i: usize, end: usize) -> usize {
        let Some(name_tok) = self.tokens.get(i + 1) else {
            return i + 1;
        };
        let Some(name) = name_tok.ident() else {
            return i + 1;
        };
        let mut j = i + 2;
        if self.tokens.get(j).is_some_and(|t| t.is_punct('<')) {
            j = self.skip_angles(j, end);
        }
        let Some(open) = self.find_block_open(j, end) else {
            return j;
        };
        let close = crate::rules::brace_match(self.tokens, open).unwrap_or(end - 1);
        let mut variants = Vec::new();
        let mut k = open + 1;
        while k < close {
            let t = &self.tokens[k];
            if t.is_punct('#') && self.tokens.get(k + 1).is_some_and(|t| t.is_punct('[')) {
                k = crate::rules::skip_attr(self.tokens, k);
                continue;
            }
            if let Some(v) = t.ident() {
                variants.push((v.to_string(), t.line, t.col));
                // Skip the variant's payload / discriminant to its comma.
                let mut depth = 0i32;
                while k < close {
                    let t = &self.tokens[k];
                    if t.is_punct(',') && depth == 0 {
                        break;
                    }
                    if t.is_punct('(') || t.is_punct('{') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct('}') || t.is_punct(']') {
                        depth -= 1;
                    }
                    k += 1;
                }
            }
            k += 1;
        }
        if !self.in_test(name_tok.line) {
            self.index.enums.push(EnumItem {
                file: self.file.to_string(),
                line: name_tok.line,
                name: name.to_string(),
                variants,
            });
        }
        close + 1
    }

    /// First `{` at or after `i` (for `mod`/`enum` heads that may carry
    /// attributes or generics in between).
    fn find_block_open(&self, i: usize, end: usize) -> Option<usize> {
        (i..end).find(|&k| self.tokens[k].is_punct('{'))
    }

    /// Index just past the `>` matching the `<` at `i`. Skips `->` arrows
    /// so `Fn() -> T` bounds do not unbalance the count.
    fn skip_angles(&self, i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            let t = &self.tokens[j];
            if t.is_punct('-') && self.tokens.get(j + 1).is_some_and(|t| t.is_punct('>')) {
                j += 2;
                continue;
            }
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        j
    }

    /// Whether a visibility qualifier precedes the keyword at `i`,
    /// scanning back over `pub(crate)`-style groups and fn qualifiers.
    fn is_pub_before(&self, i: usize) -> bool {
        let mut k = i;
        while k > 0 {
            k -= 1;
            let t = &self.tokens[k];
            match t.ident() {
                Some("pub") => return true,
                Some(
                    "const" | "unsafe" | "async" | "extern" | "crate" | "super" | "self" | "in",
                ) => continue,
                Some(_) => return false,
                None => {
                    if t.is_punct('(') || t.is_punct(')') || matches!(t.kind, TokenKind::Str) {
                        continue; // `pub(in path)`, `extern "C"`
                    }
                    return false;
                }
            }
        }
        false
    }

    /// Space-joined normalized token text for `tokens[start..end)`.
    fn normalize(&self, start: usize, end: usize) -> String {
        let mut out = String::new();
        for t in &self.tokens[start..end.min(self.tokens.len())] {
            if !out.is_empty() {
                out.push(' ');
            }
            match &t.kind {
                TokenKind::Ident(s) => out.push_str(s),
                TokenKind::Number => out.push('N'),
                TokenKind::Str => out.push('S'),
                TokenKind::Char => out.push('C'),
                TokenKind::Lifetime => out.push_str("'_"),
                TokenKind::Punct(c) => out.push(*c),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(path: &str, src: &str) -> SourceUnit {
        SourceUnit {
            rel_path: path.to_string(),
            source: src.to_string(),
        }
    }

    #[test]
    fn indexes_fns_with_modules_and_signatures() {
        let idx = SymbolIndex::from_units(&[unit(
            "crates/x/src/lib.rs",
            "pub fn ones(bytes: &[u8]) -> u32 { 0 }\n\
             pub mod reference {\n    pub fn ones(bytes: &[u8]) -> u32 { 0 }\n}\n",
        )]);
        assert_eq!(idx.fns.len(), 2);
        assert_eq!(idx.fns[0].modules, Vec::<String>::new());
        assert_eq!(idx.fns[1].modules, vec!["reference".to_string()]);
        assert_eq!(idx.fns[0].sig, idx.fns[1].sig);
        assert!(idx.fns[0].is_pub && idx.fns[1].is_pub);
    }

    #[test]
    fn signature_normalization_collapses_literals_and_whitespace() {
        let a = SymbolIndex::from_units(&[unit(
            "a.rs",
            "fn f(x: u64, y: &str) -> Option<u64> { None }",
        )]);
        let b = SymbolIndex::from_units(&[unit(
            "b.rs",
            "fn f(\n    x: u64,\n    y: &str,\n) -> Option<u64> {\n    None\n}",
        )]);
        // Trailing comma differs, so compare through the parameter names.
        assert!(a.fns[0].sig.starts_with("( x : u64 , y : & str"));
        assert!(b.fns[0].sig.starts_with("( x : u64 , y : & str"));
    }

    #[test]
    fn indexes_impl_trait_for_type_with_path_qualification() {
        let idx = SymbolIndex::from_units(&[unit(
            "crates/x/src/lib.rs",
            "impl ladder_trace::Mergeable for RunnerStats {\n    fn merge_from(&mut self, o: &Self) {}\n}\n\
             impl RunnerStats {\n    fn new() -> Self { Self }\n}\n",
        )]);
        assert!(idx.has_trait_impl("Mergeable", "RunnerStats"));
        assert_eq!(idx.impls.len(), 2);
        assert_eq!(idx.impls[1].trait_name, None);
        let merge = idx.fns.iter().find(|f| f.name == "merge_from").unwrap();
        assert_eq!(merge.impl_type.as_deref(), Some("RunnerStats"));
        assert_eq!(merge.trait_name.as_deref(), Some("Mergeable"));
        assert!(merge.body.is_some());
    }

    #[test]
    fn indexes_struct_fields_with_types() {
        let idx = SymbolIndex::from_units(&[unit(
            "crates/x/src/lib.rs",
            "pub struct EventCounts {\n    pub core_wake: u64,\n    #[allow(dead_code)]\n    pub label: String,\n    pub buckets: [u64; 8],\n}\n",
        )]);
        let s = idx.struct_named("EventCounts").unwrap();
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[0], ("core_wake".to_string(), "u64".to_string()));
        assert_eq!(s.fields[2].0, "buckets");
        assert!(s.fields[2].1.contains("u64"));
    }

    #[test]
    fn indexes_enum_variants_and_skips_payloads() {
        let idx = SymbolIndex::from_units(&[unit(
            "crates/x/src/lib.rs",
            "pub enum QueueBackend {\n    Calendar,\n    Heap,\n}\n\
             pub enum E {\n    A(u64, String),\n    B { x: u64 },\n}\n",
        )]);
        let q = &idx.enums[0];
        let names: Vec<&str> = q.variants.iter().map(|v| v.0.as_str()).collect();
        assert_eq!(names, vec!["Calendar", "Heap"]);
        let e = &idx.enums[1];
        let names: Vec<&str> = e.variants.iter().map(|v| v.0.as_str()).collect();
        assert_eq!(names, vec!["A", "B"]);
    }

    #[test]
    fn test_spans_are_excluded_but_their_idents_still_index() {
        let idx = SymbolIndex::from_units(&[unit(
            "crates/x/src/lib.rs",
            "pub fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    struct FakeStats { a: u64 }\n}\n",
        )]);
        assert_eq!(idx.fns.len(), 1);
        assert!(idx.structs.is_empty());
        let idents = &idx.file_idents["crates/x/src/lib.rs"];
        assert!(idents.contains("helper") && idents.contains("FakeStats"));
    }

    #[test]
    fn build_is_order_independent() {
        let units = vec![
            unit("b.rs", "pub fn two() -> u64 { 2 }"),
            unit("a.rs", "pub fn one() -> u64 { 1 }"),
        ];
        let fwd = SymbolIndex::from_units(&units);
        let rev: Vec<SourceUnit> = units.into_iter().rev().collect();
        assert_eq!(fwd, SymbolIndex::from_units(&rev));
        assert_eq!(fwd.fns[0].name, "one");
    }
}
