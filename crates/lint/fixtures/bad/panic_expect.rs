// path: crates/xbar/src/example.rs
// expect: panic-policy
/// Library code must not expect.
pub fn head(xs: &[u64]) -> u64 {
    xs.first().copied().expect("nonempty input")
}
