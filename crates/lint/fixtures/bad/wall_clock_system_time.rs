// path: crates/memctrl/src/example.rs
// expect: wall-clock
/// Wall-clock state in simulated logic breaks run-to-run identity.
pub fn epoch_secs() -> u64 {
    match std::time::SystemTime::UNIX_EPOCH.elapsed() {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
