// path: crates/sim/src/runner.rs
// expect: flat-options
pub fn quick_config() -> SimConfig {
    SimConfig { trace: true }
}
