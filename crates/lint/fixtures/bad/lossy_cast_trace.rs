// path: crates/trace/src/example.rs
// expect: lossy-cast
/// Truncating a fold result silently corrupts the accounting.
pub fn to_counter(total: u64) -> u32 {
    total as u32
}
