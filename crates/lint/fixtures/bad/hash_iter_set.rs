// path: crates/wear/src/example.rs
// expect: hash-iter
/// Picking "any" element of a `HashSet` is a nondeterministic choice.
pub fn first(s: &std::collections::HashSet<u64>) -> Option<u64> {
    s.iter().next().copied()
}
