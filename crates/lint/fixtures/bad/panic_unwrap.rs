// path: crates/sim/src/example.rs
// expect: panic-policy
/// Library code must not unwrap.
pub fn head(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}
