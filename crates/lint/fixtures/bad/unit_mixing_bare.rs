// path: crates/xbar/src/timing.rs
// expect: unit-mixing @ 5:15
/// Adds a nanosecond adjustment straight onto a picosecond base.
pub fn total(base_ps: u64, adj_ns: u64) -> u64 {
    base_ps + adj_ns
}
