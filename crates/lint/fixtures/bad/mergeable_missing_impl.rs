// path: crates/coding/src/tally.rs
// expect: mergeable-coverage @ 4:12
/// Counter struct that never joined the shard fold.
pub struct TallyStats {
    pub hits: u64,
}
