// path: crates/memctrl/src/tally.rs
// expect: counter-overflow-policy @ 11:22
/// Counter struct whose fold path wraps on overflow.
pub struct RetryCounts {
    pub retries: u64,
}

impl RetryCounts {
    /// The record path may stay `+=`; the cross-shard fold must not.
    pub fn merge(&mut self, other: &Self) {
        self.retries += other.retries;
    }
}
