// path: crates/reram/src/example.rs
// expect: panic-policy
/// Library code must not panic!.
pub fn check(x: u64) {
    if x == 0 {
        panic!("zero is not allowed");
    }
}
