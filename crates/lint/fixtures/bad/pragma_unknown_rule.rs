// path: crates/sim/src/example.rs
// expect: pragma
/// A typo'd rule name must be an error, never a silent no-op.
pub fn f() -> u64 {
    // lint: allow(panick-policy) — typo in the rule name
    42
}
