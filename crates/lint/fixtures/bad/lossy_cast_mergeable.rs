// path: crates/core/src/example.rs
// expect: lossy-cast
/// Stats with a lossy fold step.
pub struct Stats {
    a: u16,
    b: u64,
}

impl Mergeable for Stats {
    fn merge_from(&mut self, other: &Self) {
        self.a += other.b as u16;
    }
}
