// path: crates/coding/src/example.rs
// expect: hash-iter
/// Iterating a `HashMap` of per-tier counters makes the folded coding
/// statistics depend on the hasher seed.
pub fn fold_tiers(m: &std::collections::HashMap<u8, u64>) -> u64 {
    m.values().sum()
}
