// path: crates/bench/src/bin/example.rs
// expect: bench-flags
use ladder_bench::BenchArgs;

fn main() {
    let _args = BenchArgs::parse();
    // --trace is not wired: no emit_trace_if_requested call.
}
