// path: crates/bench/src/bin/example.rs
// expect: bench-flags
use ladder_bench::{config_from_args, runner_from_args};

fn main() {
    let _cfg = config_from_args();
    let _runner = runner_from_args();
    // --trace is not wired: no emit_trace_if_requested / parse_trace.
}
