// path: crates/sim/src/example.rs
// expect: hash-iter
/// Folding over a `HashMap` makes export order depend on the hasher seed.
pub fn fold(m: &std::collections::HashMap<u64, u64>) -> u64 {
    m.values().sum()
}
