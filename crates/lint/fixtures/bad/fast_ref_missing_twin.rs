// path: crates/reram/src/kernels.rs
// expect: fast-ref-twin @ 6:12
/// Reference-only kernel: its fast twin was deleted in a refactor.
pub mod reference {
    /// Population count, one lane at a time.
    pub fn frob(word: u64) -> u32 {
        word.count_ones()
    }
}
