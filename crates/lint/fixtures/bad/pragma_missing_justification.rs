// path: crates/sim/src/example.rs
// expect: pragma
/// A pragma without a justification suppresses its target but is itself
/// reported, so it can never land unexplained.
pub fn head(xs: &[u64]) -> u64 {
    // lint: allow(panic-policy)
    xs.first().copied().unwrap()
}
