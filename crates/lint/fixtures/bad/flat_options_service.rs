// path: crates/sim/src/experiments.rs
// expect: flat-options
pub fn offered_traffic() -> ServiceConfig {
    ServiceConfig {
        arrival: ArrivalKind::Poisson,
        load: 6.0,
        tenants: 3,
        zipf_theta: 0.99,
        read_fraction: 0.9,
        requests: 50_000,
    }
}
