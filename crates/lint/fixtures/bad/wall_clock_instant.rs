// path: crates/core/src/example.rs
// expect: wall-clock
/// Host-clock reads couple simulated results to machine speed.
pub fn stamp() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    t0.elapsed()
}
