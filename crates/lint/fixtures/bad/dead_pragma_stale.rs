// path: crates/sim/src/cleanup.rs
// expect: dead-pragma @ 5:5
/// The unwrap this pragma once justified was refactored away.
pub fn remaining(total: u64, done: u64) -> u64 {
    // lint: allow(panic-policy) — was: indexing proven in-bounds
    total.saturating_sub(done)
}
