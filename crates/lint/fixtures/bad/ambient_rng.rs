// path: crates/workloads/src/example.rs
// expect: ambient-rng
/// Ambient randomness escapes the master-seed discipline.
pub fn roll() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}
