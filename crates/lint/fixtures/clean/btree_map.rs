// path: crates/sim/src/example.rs
use std::collections::BTreeMap;

/// Sorted iteration is deterministic by construction.
pub fn fold(m: &BTreeMap<u64, u64>) -> u64 {
    m.values().sum()
}
