// path: crates/sim/src/wallclock.rs
use std::time::{Duration, Instant};

/// The sanctioned wall-clock module itself may read the host clock.
pub fn elapsed_since_start() -> Duration {
    Instant::now().elapsed()
}
