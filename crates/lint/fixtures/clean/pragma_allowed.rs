// path: crates/sim/src/example.rs
/// A justified pragma is the sanctioned escape hatch.
pub fn head(xs: &[u64]) -> u64 {
    // lint: allow(panic-policy) — invariant: callers guarantee xs is nonempty
    xs.first().copied().unwrap()
}
