// path: crates/sim/src/cleanup.rs
/// The pragma still suppresses a real violation below it.
pub fn head(values: &[u64]) -> u64 {
    // lint: allow(panic-policy) — invariant: callers guarantee non-empty
    *values.first().unwrap()
}
