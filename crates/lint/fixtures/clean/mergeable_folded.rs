// path: crates/coding/src/tally.rs
/// Counter struct wired into the shard fold.
pub struct TallyStats {
    pub hits: u64,
}

impl Mergeable for TallyStats {
    fn merge_from(&mut self, other: &Self) {
        self.hits = self.hits.saturating_add(other.hits);
    }
}
// file: crates/sim/src/fold.rs
pub fn fold(result: &mut RunResult, shard: &TallyStats) {
    result.tally.merge_from(shard);
}
