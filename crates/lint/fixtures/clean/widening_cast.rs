// path: crates/trace/src/example.rs
/// Widening casts lose nothing and are allowed in accounting code.
pub fn widen(x: u32) -> u64 {
    x as u64
}
