// path: crates/xbar/src/example.rs
use std::collections::HashMap;

/// `HashMap` is fine outside the determinism-critical crates as long as
/// no exported ordering depends on it.
pub fn lookup(m: &HashMap<u64, u64>, k: u64) -> Option<u64> {
    m.get(&k).copied()
}
