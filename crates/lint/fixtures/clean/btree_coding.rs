// path: crates/coding/src/example.rs
use std::collections::BTreeMap;

/// Per-tier counters in a `BTreeMap` iterate in key order, so the folded
/// coding statistics are hasher-independent.
pub fn fold_tiers(m: &BTreeMap<u8, u64>) -> u64 {
    m.values().sum()
}
