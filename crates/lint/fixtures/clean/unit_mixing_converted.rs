// path: crates/xbar/src/timing.rs
/// Converts the adjustment into the ps domain before adding.
pub fn total(base_ps: u64, adj_ns: u64) -> u64 {
    base_ps + ns_to_ps(adj_ns)
}
