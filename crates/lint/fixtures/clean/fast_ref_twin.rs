// path: crates/reram/src/kernels.rs
/// Fast path, paired with the bit-serial reference below and proven in
/// the equivalence-test unit of this fixture corpus.
pub fn frob(word: u64) -> u32 {
    word.count_ones()
}

/// Reference twin: same signature, proven equivalent in the tests.
pub mod reference {
    pub fn frob(word: u64) -> u32 {
        word.count_ones()
    }
}
// file: crates/reram/tests/kernels_equivalence.rs
fn frob_matches_reference() {
    let word = 0xF0F0_1234_u64;
    assert_eq!(crate::frob(word), crate::reference::frob(word));
}
