// path: crates/sim/src/runner.rs
pub fn quick_config() -> SimConfig {
    SimConfig::builder().trace(true).build()
}

impl SimConfig {
    fn helper() {}
}
