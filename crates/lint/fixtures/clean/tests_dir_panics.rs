// path: crates/sim/tests/example.rs
/// Integration tests may unwrap and panic.
#[test]
fn asserts_hard() {
    let xs = vec![1u64];
    assert_eq!(xs.first().copied().unwrap(), 1);
}
