// path: crates/sim/src/experiments.rs
pub fn offered_traffic() -> ServiceConfig {
    ServiceConfig::builder()
        .arrival(ArrivalKind::Poisson)
        .load(6.0)
        .tenants(3)
        .zipf_theta(0.99)
        .read_fraction(0.9)
        .requests(50_000)
        .build()
}
