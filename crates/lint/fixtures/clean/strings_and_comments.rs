// path: crates/sim/src/example.rs
// A comment may talk about HashMap, Instant::now() and thread_rng freely.
/// Returns documentation text mentioning banned names.
pub fn describe() -> &'static str {
    "HashMap iteration, Instant::now(), thread_rng and .unwrap() in a \
     string literal are data, not code"
}
