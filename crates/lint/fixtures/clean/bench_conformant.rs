// path: crates/bench/src/bin/example.rs
use ladder_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let _runner = args.runner();
    args.emit_trace_if_requested(&args.cfg);
}
