// path: crates/bench/src/bin/example.rs
use ladder_bench::{config_from_args, emit_trace_if_requested, runner_from_args};

fn main() {
    let cfg = config_from_args();
    let _runner = runner_from_args();
    emit_trace_if_requested(&cfg);
}
