// path: crates/memctrl/src/tally.rs
/// The fold path saturates instead of wrapping.
pub struct RetryCounts {
    pub retries: u64,
}

impl RetryCounts {
    pub fn merge(&mut self, other: &Self) {
        self.retries = self.retries.saturating_add(other.retries);
    }
}
