// path: crates/sim/src/example.rs
/// Production half of the file.
pub fn double(x: u64) -> u64 {
    x * 2
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_hash_and_unwrap() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
    }
}
